"""The ``loop`` backend: the audited per-sample reference implementation.

This is the code that used to live inline in every engine's hot loop —
extracted verbatim, one copy instead of six.  It is deliberately *not*
clever: each entry point walks the signal one sample at a time in
exactly the operation order the seed engines used, so its outputs are
bit-identical to the historical implementations.  The :mod:`.vector`
backend is validated against this one (property-tested to ≤ 1e-10); any
future backend (numba, batched multi-scenario) earns its keep against
the same reference.

Every entry point mutates the caller's tap (and auxiliary) arrays in
place — engines keep owning their state; the kernel owns only the walk.
"""

from __future__ import annotations

import numpy as np

from ..base import effective_step, guard_divergence, tap_window

__all__ = ["fxlms_run", "fxlms_block", "lms_run", "rls_run", "apa_run",
           "multiref_run"]


def fxlms_run(state, taps, d, mu, normalized=True, leak=0.0, adapt=True,
              active=True, adapt_mask=None, context="LancFilter"):
    """Batch two-sided FxLMS over a :meth:`KernelState.batch` state.

    Returns ``(errors, outputs)``; ``taps`` is updated in place.
    """
    xp, off = state.xp, state.off
    xfp, offf = state.xfp, state.offf
    s_true = state.secondary_true
    n_future, n_past = state.n_future, state.n_past

    T = d.size
    s_len = s_true.size
    y_recent = np.zeros(s_len)  # y(t), y(t-1), ... newest first
    errors = np.empty(T)
    outputs = np.empty(T)

    if not active:
        # Speaker not driven: zero output, disturbance passes through
        # (batch states start from silence, so no residual ringing).
        outputs[:] = 0.0
        errors[:] = d
        return errors, outputs

    for t in range(T):
        win = tap_window(xp, off, t, n_future, n_past)
        y = float(np.dot(taps, win))
        outputs[t] = y
        y_recent[1:] = y_recent[:-1]
        y_recent[0] = y
        e = d[t] + float(np.dot(s_true, y_recent))
        errors[t] = e
        guard_divergence(e, context)
        if adapt and (adapt_mask is None or adapt_mask[t]):
            winf = tap_window(xfp, offf, t, n_future, n_past)
            step = effective_step(mu, winf, normalized)
            if leak:
                taps *= (1.0 - leak)
            taps -= step * e * winf
    return errors, outputs


def fxlms_block(state, taps, d, mu, normalized=True, leak=0.0, adapt=True,
                active=True, context="StreamingLanc"):
    """One streaming block over a :meth:`KernelState.streaming` state.

    Advances ``state.time`` and ``state.y_recent``; returns the error
    block.  ``active=False`` mutes the speaker for the block while
    anti-noise already in flight keeps ringing through the secondary
    path.
    """
    n_future, n_past = state.n_future, state.n_past
    s_true = state.secondary_true
    y_recent = state.y_recent
    x, xf = state.x, state.xf
    errors = np.empty(d.size)

    if not active:
        # Speaker muted: output is zero, but anti-noise already in
        # flight keeps ringing through the secondary path.
        for i in range(d.size):
            y_recent[1:] = y_recent[:-1]
            y_recent[0] = 0.0
            e = d[i] + float(np.dot(s_true, y_recent))
            errors[i] = e
        state.time += d.size
        return errors

    for i in range(d.size):
        t = state.time + i
        lo = t - (n_past - 1)
        hi = t + n_future + 1
        if lo >= 0:
            win = x[lo:hi][::-1]
            winf = xf[lo:hi][::-1]
        else:
            pad = -lo
            win = np.concatenate([x[0:hi][::-1], np.zeros(pad)])
            winf = np.concatenate([xf[0:hi][::-1], np.zeros(pad)])
        y = float(np.dot(taps, win))
        y_recent[1:] = y_recent[:-1]
        y_recent[0] = y
        e = d[i] + float(np.dot(s_true, y_recent))
        errors[i] = e
        guard_divergence(e, context)
        if adapt:
            step = effective_step(mu, winf, normalized)
            if leak:
                taps *= (1.0 - leak)
            taps -= step * e * winf
    state.time += d.size
    return errors


def lms_run(x, d, taps, window, mu, normalized=True, leak=0.0,
            context="LmsFilter"):
    """Causal (N)LMS predict-then-adapt over whole waveforms.

    ``window`` is the engine's newest-first shift register; both it and
    ``taps`` are updated in place so single-sample ``step()`` calls can
    resume where the run left off.  Returns ``(predictions, errors)``.
    """
    predictions = np.empty(x.size)
    errors = np.empty(x.size)
    for t in range(x.size):
        window[1:] = window[:-1]
        window[0] = x[t]
        prediction = float(np.dot(taps, window))
        error = float(d[t]) - prediction
        guard_divergence(error, context)
        step = effective_step(mu, window, normalized)
        if leak:
            taps *= (1.0 - leak)
        taps += step * error * window
        predictions[t] = prediction
        errors[t] = error
    return predictions, errors


def rls_run(x, d, taps, window, P, forgetting, context="RlsFilter"):
    """Exponentially-weighted RLS over whole waveforms.

    ``taps``, ``window`` (newest-first) and the inverse-correlation
    matrix ``P`` are updated in place.  Returns
    ``(predictions, errors)``.
    """
    predictions = np.empty(x.size)
    errors = np.empty(x.size)
    P_local = P
    for t in range(x.size):
        window[1:] = window[:-1]
        window[0] = x[t]
        u = window
        prediction = float(np.dot(taps, u))
        error = float(d[t]) - prediction
        guard_divergence(error, context)

        Pu = P_local @ u
        denom = forgetting + float(np.dot(u, Pu))
        gain = Pu / denom
        taps += gain * error
        # Joseph-free rank-1 downdate; re-symmetrize to fight drift.
        P_local = (P_local - np.outer(gain, Pu)) / forgetting
        P_local = 0.5 * (P_local + P_local.T)
        predictions[t] = prediction
        errors[t] = error
    P[:] = P_local
    return predictions, errors


def apa_run(x, d, taps, window, U, d_ring, mu, epsilon,
            context="ApaFilter"):
    """Affine-projection adaptation over whole waveforms.

    ``taps``, ``window``, the input-window ring ``U`` (rows, newest
    first) and the desired-sample ring ``d_ring`` are updated in place.
    Returns ``(predictions, errors)``.
    """
    from scipy import linalg

    order = U.shape[0]
    predictions = np.empty(x.size)
    errors = np.empty(x.size)
    eye = np.eye(order)
    for t in range(x.size):
        window[1:] = window[:-1]
        window[0] = x[t]
        U[1:] = U[:-1]
        U[0] = window
        d_ring[1:] = d_ring[:-1]
        d_ring[0] = d[t]

        prediction = float(np.dot(taps, window))
        error = float(d[t]) - prediction
        guard_divergence(error, context)

        # Error vector over the projection window.
        e_vec = d_ring - U @ taps
        gram = U @ U.T + epsilon * eye
        try:
            solved = linalg.solve(gram, e_vec, assume_a="pos")
        except linalg.LinAlgError:   # pragma: no cover - eps prevents this
            solved = linalg.lstsq(gram, e_vec)[0]
        taps += mu * (U.T @ solved)
        predictions[t] = prediction
        errors[t] = error
    return predictions, errors


def multiref_run(states, taps_list, d, mu, normalized=True, leak=0.0,
                 adapt=True, context="MultiRefLancFilter"):
    """Multi-reference two-sided FxLMS: one batch state per branch.

    All branches share the error signal and the (true) secondary path
    of ``states[0]``; the NLMS step is normalized by the *total*
    filtered-window power across branches.  Each branch's taps are
    updated in place.  Returns ``(errors, outputs)``.
    """
    s_true = states[0].secondary_true
    n_past = states[0].n_past
    T = d.size
    branches = [(st.xp, st.off, st.xfp, st.offf, st.n_future)
                for st in states]

    y_recent = np.zeros(s_true.size)
    errors = np.empty(T)
    outputs = np.empty(T)

    for t in range(T):
        y = 0.0
        windows_f = []
        for taps, (xp, off, xfp, offf, n_future) in zip(taps_list,
                                                        branches):
            win = tap_window(xp, off, t, n_future, n_past)
            y += float(np.dot(taps, win))
            if adapt:
                windows_f.append(
                    tap_window(xfp, offf, t, n_future, n_past)
                )
        outputs[t] = y
        y_recent[1:] = y_recent[:-1]
        y_recent[0] = y
        e = d[t] + float(np.dot(s_true, y_recent))
        errors[t] = e
        guard_divergence(e, context)
        if adapt:
            total_power = sum(float(np.dot(w, w)) for w in windows_f)
            step = (mu / (total_power + 1e-8) if normalized else mu)
            for taps, winf in zip(taps_list, windows_f):
                if leak:
                    taps *= (1.0 - leak)
                taps -= step * e * winf
    return errors, outputs
