"""Pluggable adaptive-filter kernels: one API, interchangeable backends.

The engines in :mod:`repro.core.adaptive` own configuration, validation
and observability; the *inner loops* all live here, behind a small API:

* :class:`KernelState` — reference / filtered-reference history in the
  paper's tap convention ``k ∈ [-n_future, n_past - 1]`` (batch and
  streaming construction modes);
* :func:`fxlms_run` / :func:`fxlms_block` — two-sided FxLMS over a
  batch state / one streaming block, with ``adapt`` and ``active``
  flags;
* :func:`lms_run` / :func:`rls_run` / :func:`apa_run` /
  :func:`multiref_run` — the causal-baseline and multi-reference
  walks.

Two backends implement the API:

``loop``
    The audited per-sample reference implementation, extracted verbatim
    from the seed engines — bit-identical to the historical outputs.
    The default.
``vector``
    Sliding-window views + precomputed recursions; ≥3x faster on the
    LANC loop and matches ``loop`` to ≤ 1e-10 on every engine
    (property-tested in ``tests/test_kernels.py``).

Backend selection, first match wins:

1. an explicit ``backend=`` argument (engines expose this, plumbed from
   ``MuteConfig.kernel_backend`` and the CLI ``--kernel-backend`` flag);
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default, ``loop``.

See ``docs/KERNELS.md`` for the full contract.
"""

from __future__ import annotations

import os

from ....errors import ConfigurationError
from . import loop, vector
from .state import KernelState
from .workspace import BatchWorkspace

__all__ = [
    "KernelState",
    "BatchWorkspace",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "resolve_backend_name",
    "get_backend",
    "fxlms_run",
    "fxlms_block",
    "fxlms_block_batch",
    "lms_run",
    "rls_run",
    "apa_run",
    "multiref_run",
]

#: Environment variable consulted when no explicit backend is given.
ENV_VAR = "REPRO_KERNEL_BACKEND"

#: Fallback backend — the bit-identical reference implementation.
DEFAULT_BACKEND = "loop"

_BACKENDS = {"loop": loop, "vector": vector}


def available_backends():
    """Names of the registered kernel backends, sorted."""
    return tuple(sorted(_BACKENDS))


def resolve_backend_name(name=None):
    """Resolve a backend name: explicit → ``REPRO_KERNEL_BACKEND`` → loop."""
    if name is None:
        name = os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND
    name = str(name).strip().lower()
    if name not in _BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return name


def get_backend(name=None):
    """The backend module for ``name`` (resolved per the selection order)."""
    return _BACKENDS[resolve_backend_name(name)]


# ----------------------------------------------------------------------
# Dispatching entry points — what the engines call.
# ----------------------------------------------------------------------
def fxlms_run(state, taps, d, mu, backend=None, **kwargs):
    """Batch two-sided FxLMS; returns ``(errors, outputs)``."""
    return get_backend(backend).fxlms_run(state, taps, d, mu, **kwargs)


def fxlms_block(state, taps, d, mu, backend=None, **kwargs):
    """One streaming FxLMS block; returns the error block.

    The reference-underrun check is shared across backends: processing
    sample ``t`` needs the aligned reference up to ``t + n_future``.
    """
    needed = state.time + d.size + state.n_future
    if state.x.size < needed:
        raise ConfigurationError(
            f"reference underrun: need {needed} fed samples, "
            f"have {state.x.size}"
        )
    return get_backend(backend).fxlms_block(state, taps, d, mu, **kwargs)


def fxlms_block_batch(states, taps, d, mu, **kwargs):
    """One lock-step FxLMS block across a batch of streaming states.

    The cross-session kernel behind :mod:`repro.serving`; returns
    ``(errors, diverged)`` — see :func:`vector.fxlms_block_batch`.
    There is no per-backend choice here: the batch path *is* the
    vectorized implementation, and serial serving calls the same
    kernel with singleton batches (that is what makes serial == batched
    bit-identical).  Homogeneity and underrun validation is shared
    here so the hot kernel can assume clean inputs.
    """
    import numpy as np

    if not states:
        raise ConfigurationError("fxlms_block_batch needs >= 1 state")
    st0 = states[0]
    for st in states:
        if st.mode != "streaming":
            raise ConfigurationError(
                "fxlms_block_batch needs streaming KernelStates"
            )
        if (st.n_future, st.n_past) != (st0.n_future, st0.n_past) \
                or st.secondary_true.size != st0.secondary_true.size:
            raise ConfigurationError(
                "fxlms_block_batch needs homogeneous session geometry "
                f"(n_future={st0.n_future}, n_past={st0.n_past}, "
                f"s_len={st0.secondary_true.size})"
            )
    taps = np.asarray(taps)
    d = np.asarray(d)
    if d.ndim != 2 or d.shape[0] != len(states):
        raise ConfigurationError(
            f"d must be (n_sessions, block); got {d.shape}"
        )
    if taps.shape != (len(states), st0.n_taps):
        raise ConfigurationError(
            f"taps must be ({len(states)}, {st0.n_taps}); "
            f"got {taps.shape}"
        )
    for st in states:
        needed = st.time + d.shape[1] + st.n_future
        if st.x.size < needed:
            raise ConfigurationError(
                f"reference underrun: need {needed} fed samples, "
                f"have {st.x.size}"
            )
    return vector.fxlms_block_batch(states, taps, d, mu, **kwargs)


def lms_run(x, d, taps, window, mu, backend=None, **kwargs):
    """Causal (N)LMS walk; returns ``(predictions, errors)``."""
    return get_backend(backend).lms_run(x, d, taps, window, mu, **kwargs)


def rls_run(x, d, taps, window, P, forgetting, backend=None, **kwargs):
    """RLS walk; returns ``(predictions, errors)``."""
    return get_backend(backend).rls_run(x, d, taps, window, P, forgetting,
                                        **kwargs)


def apa_run(x, d, taps, window, U, d_ring, mu, epsilon, backend=None,
            **kwargs):
    """Affine-projection walk; returns ``(predictions, errors)``."""
    return get_backend(backend).apa_run(x, d, taps, window, U, d_ring, mu,
                                        epsilon, **kwargs)


def multiref_run(states, taps_list, d, mu, backend=None, **kwargs):
    """Multi-reference FxLMS walk; returns ``(errors, outputs)``."""
    return get_backend(backend).multiref_run(states, taps_list, d, mu,
                                             **kwargs)
