"""Preallocated scratch arena for the batched serving kernel.

:func:`repro.core.adaptive.kernels.fxlms_block_batch` needs a dozen
``(S, ·)`` scratch arrays per tick — stacked reference segments, the
padded output timeline, step sizes, per-sample dot-product results,
divergence masks.  Allocating them fresh every block dominated the
serving steady state (profiled via ``repro perf-profile``): at 64
sessions the kernel itself is a few fused einsums, and ``np.zeros`` of
the big stacks was a measurable fraction of the tick.

:class:`BatchWorkspace` owns all of them, sized once for a maximum
batch geometry, and hands out capacity-sliced views per call.  The
kernel *writes* (``fill``, ``out=``, ``np.copyto``) instead of
allocating, so the steady-state block loop performs zero per-tick
array-data allocations (asserted with ``tracemalloc`` in
``tests/test_serving.py``).

The arena changes *where* results live, never *what* they are: the
kernel runs the identical instruction sequence over arena views and
fresh arrays, so arena output is bit-identical to fresh-allocation
output (property-tested).  Callers must treat arrays returned from a
workspace-backed call as borrowed — valid until the next call on the
same workspace.
"""

from __future__ import annotations

import numpy as np

from ....errors import ConfigurationError

__all__ = ["BatchWorkspace"]


class BatchWorkspace:
    """Reusable scratch buffers for one batched-kernel geometry.

    Parameters
    ----------
    max_sessions:
        Largest batch size ``S`` the arena must serve.
    block_size:
        Block length ``B`` of each tick.
    n_future / n_past:
        Two-sided window geometry (``n_taps = n_future + n_past``).
    s_len:
        Secondary-path FIR length.

    Calls with any ``S' <= max_sessions`` reuse the same arena via
    leading-axis slices; every other dimension must match exactly
    (checked by :meth:`fits`).
    """

    def __init__(self, max_sessions, block_size, n_future, n_past, s_len):
        if max_sessions < 1 or block_size < 1:
            raise ConfigurationError(
                "BatchWorkspace needs max_sessions >= 1 and block_size >= 1"
            )
        if n_future < 0 or n_past < 1 or s_len < 1:
            raise ConfigurationError(
                "BatchWorkspace needs n_future >= 0, n_past >= 1, s_len >= 1"
            )
        self.max_sessions = int(max_sessions)
        self.block_size = int(block_size)
        self.n_future = int(n_future)
        self.n_past = int(n_past)
        self.n_taps = self.n_future + self.n_past
        self.s_len = int(s_len)

        S, B = self.max_sessions, self.block_size
        L = (self.n_past - 1) + B + self.n_future
        self.seg_len = L
        # Stacked per-session inputs the server fills in place.
        self.seg = np.zeros((S, L))
        self.segf = np.zeros((S, L))
        self.s_rev = np.zeros((S, self.s_len))
        self.opad = np.zeros((S, B + self.s_len - 1))
        self.taps_fwd = np.zeros((S, self.n_taps))
        #: Caller-facing stacks — the server fills these in place
        #: instead of ``np.stack``-ing fresh arrays every tick.
        self.taps_io = np.zeros((S, self.n_taps))
        self.d = np.zeros((S, B))
        self.mu = np.zeros(S)
        # Per-call intermediates.
        self.errors = np.empty((S, B))
        self.powers = np.empty((S, B))
        self.steps = np.empty((S, B))
        self.decay = np.empty((S, 1))
        # Per-sample row vectors.
        self.y = np.empty(S)
        self.e = np.empty(S)
        self.coef = np.empty(S)
        self.tmp_taps = np.empty((S, self.n_taps))
        # Masks and divergence scratch.
        self.active = np.empty(S, dtype=bool)
        self.adapt = np.empty(S, dtype=bool)
        self.inactive = np.empty(S, dtype=bool)
        self.noadapt = np.empty(S, dtype=bool)
        self.bad = np.empty((S, B), dtype=bool)
        self.bad2 = np.empty((S, B), dtype=bool)
        self.diverged = np.empty(S, dtype=bool)

    def fits(self, n_sessions, block_size, n_future, n_past, s_len):
        """Whether a batch of this geometry can run inside the arena."""
        return (n_sessions <= self.max_sessions
                and block_size == self.block_size
                and n_future == self.n_future
                and n_past == self.n_past
                and s_len == self.s_len)

    @property
    def nbytes(self):
        """Total bytes held by the arena (for observability surfaces)."""
        return sum(
            getattr(self, name).nbytes
            for name in ("seg", "segf", "s_rev", "opad", "taps_fwd",
                         "taps_io", "d", "mu", "errors", "powers", "steps",
                         "decay", "y", "e", "coef", "tmp_taps", "active",
                         "adapt", "inactive", "noadapt", "bad", "bad2",
                         "diverged")
        )
