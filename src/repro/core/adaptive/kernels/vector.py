"""The ``vector`` backend: sliding-window views + precomputed recursions.

Same math as :mod:`.loop`, restructured for throughput:

* windows come from :func:`numpy.lib.stride_tricks.sliding_window_view`
  over the padded reference — zero copies, zero per-sample slicing
  logic (taps are kept in *forward* (oldest-first) order locally so the
  window rows need no per-sample reversal);
* everything that does not depend on the adapting taps is precomputed
  and vectorized: the filtered reference, the per-sample NLMS window
  powers (one ``einsum``), and the secondary-path ringing layout (one
  growing output array read through a sliding view instead of a
  shift-register copy per sample);
* the *inactive* (muted speaker) and *frozen-tap* (``adapt=False``)
  paths contain no Python loop at all — output and ringing collapse to
  one matvec plus one sliding-window dot;
* only the inherently sequential tap recursion — each sample's output
  depends on taps updated by the previous sample — remains a Python
  loop, stripped to three raw BLAS calls per sample (``ddot`` for the
  output and the ringing, ``daxpy`` for the in-place tap update) so the
  per-call overhead of the ufunc machinery never enters the hot path.

Divergence is checked per :data:`GUARD_INTERVAL` samples rather than
per sample: the same :class:`repro.errors.ConvergenceError` is raised
for the same first offending sample, just a few hundred samples of
(ignored) arithmetic later.

Contract: every entry point matches :mod:`.loop` to ≤ 1e-10 absolute on
errors/outputs/taps (property-tested in ``tests/test_kernels.py``); it
is *not* bit-identical — summation orders differ.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy.linalg.blas import daxpy, ddot, dsymv, dsyr

from ..base import DIVERGENCE_LIMIT, guard_divergence

__all__ = ["fxlms_run", "fxlms_block", "fxlms_block_batch", "lms_run",
           "rls_run", "apa_run", "multiref_run", "GUARD_INTERVAL"]

#: Samples between divergence checks in the sequential paths.
GUARD_INTERVAL = 256

_EPS = 1e-8  # NLMS step regularizer (matches base.effective_step)


def _guard_block(errors, lo, hi, context):
    """Raise like :func:`guard_divergence` on the first bad sample."""
    seg = errors[lo:hi]
    if seg.size == 0:
        return
    bad = ~np.isfinite(seg) | (np.abs(seg) > DIVERGENCE_LIMIT)
    if bad.any():
        first = int(np.flatnonzero(bad)[0])
        guard_divergence(float(seg[first]), context)


def _steps(windows, mu, normalized):
    """Per-sample (N)LMS step sizes — one einsum instead of T dots."""
    if not normalized:
        return np.full(windows.shape[0], float(mu))
    powers = np.einsum("ij,ij->i", windows, windows)
    return mu / (powers + _EPS)


def _ringing(opad, s_rev):
    """Secondary-path contribution per sample from the padded outputs."""
    return sliding_window_view(opad, s_rev.size) @ s_rev


def fxlms_run(state, taps, d, mu, normalized=True, leak=0.0, adapt=True,
              active=True, adapt_mask=None, context="LancFilter"):
    """Batch two-sided FxLMS (vectorized); see :func:`loop.fxlms_run`."""
    T = d.size
    n_taps = state.n_taps
    s_true = state.secondary_true
    s_len = s_true.size

    if not active:
        return d.copy(), np.zeros(T)

    W = sliding_window_view(state.xp, n_taps)      # row t = forward window
    s_rev = np.ascontiguousarray(s_true[::-1])
    taps_fwd = np.ascontiguousarray(taps[::-1])

    if not adapt:
        # Frozen taps: pure filtering, no loop at all.
        outputs = W @ taps_fwd
        opad = np.concatenate([np.zeros(s_len - 1), outputs])
        errors = d + _ringing(opad, s_rev)
        _guard_block(errors, 0, T, context)
        return errors, outputs

    Wf = sliding_window_view(state.xfp, n_taps)
    steps = _steps(Wf, mu, normalized)
    mask = None if adapt_mask is None else np.asarray(adapt_mask,
                                                      dtype=bool)

    opad = np.zeros(T + s_len - 1)
    o_view = sliding_window_view(opad, s_len)      # reads reflect writes
    errors = np.empty(T)
    d_list = d.tolist()                            # python floats: the hot
    step_list = steps.tolist()                     # loop dodges np scalars
    mask_list = None if mask is None else mask.tolist()
    decay = 1.0 - leak
    guard_at = GUARD_INTERVAL
    with np.errstate(all="ignore"):
        for t in range(T):
            y = ddot(W[t], taps_fwd)
            opad[t + s_len - 1] = y
            e = d_list[t] + ddot(o_view[t], s_rev)
            errors[t] = e
            if mask_list is None or mask_list[t]:
                if leak:
                    taps_fwd *= decay
                daxpy(Wf[t], taps_fwd, a=-(step_list[t] * e))
            if t + 1 == guard_at:
                _guard_block(errors, guard_at - GUARD_INTERVAL, guard_at,
                             context)
                guard_at += GUARD_INTERVAL
    _guard_block(errors, guard_at - GUARD_INTERVAL, T, context)
    taps[:] = taps_fwd[::-1]
    return errors, opad[s_len - 1:].copy()


def fxlms_block(state, taps, d, mu, normalized=True, leak=0.0, adapt=True,
                active=True, context="StreamingLanc"):
    """One streaming block (vectorized); see :func:`loop.fxlms_block`."""
    B = d.size
    n_future, n_past, n_taps = state.n_future, state.n_past, state.n_taps
    s_true = state.secondary_true
    s_len = s_true.size
    time = state.time
    s_rev = np.ascontiguousarray(s_true[::-1])

    # Padded output timeline: opad[j] = y(time - (s_len-1) + j), the
    # first s_len-1 entries being anti-noise already in flight.
    opad = np.zeros(B + s_len - 1)
    if s_len > 1:
        opad[:s_len - 1] = state.y_recent[:s_len - 1][::-1]

    if not active:
        # Muted speaker: only the in-flight anti-noise rings out.
        errors = d + _ringing(opad, s_rev)
        state.y_recent[:] = opad[B - 1: B + s_len - 1][::-1]
        state.time += B
        return errors

    # Reference segment covering every window of the block, zero-padded
    # on the left exactly like the loop backend's early-sample windows.
    lo0 = time - (n_past - 1)
    seg = state.x[max(lo0, 0): time + B + n_future]
    segf = state.xf[max(lo0, 0): time + B + n_future]
    if lo0 < 0:
        pad = np.zeros(-lo0)
        seg = np.concatenate([pad, seg])
        segf = np.concatenate([pad, segf])
    W = sliding_window_view(seg, n_taps)           # row i ↔ t = time + i
    taps_fwd = np.ascontiguousarray(taps[::-1])

    if not adapt:
        outputs = W @ taps_fwd
        opad[s_len - 1:] = outputs
        errors = d + _ringing(opad, s_rev)
        _guard_block(errors, 0, B, context)
        state.y_recent[:] = opad[B - 1: B + s_len - 1][::-1]
        state.time += B
        return errors

    Wf = sliding_window_view(segf, n_taps)
    steps = _steps(Wf, mu, normalized)
    o_view = sliding_window_view(opad, s_len)
    errors = np.empty(B)
    d_list = d.tolist()
    step_list = steps.tolist()
    decay = 1.0 - leak
    guard_at = GUARD_INTERVAL
    with np.errstate(all="ignore"):
        for i in range(B):
            y = ddot(W[i], taps_fwd)
            opad[i + s_len - 1] = y
            e = d_list[i] + ddot(o_view[i], s_rev)
            errors[i] = e
            if leak:
                taps_fwd *= decay
            daxpy(Wf[i], taps_fwd, a=-(step_list[i] * e))
            if i + 1 == guard_at:
                _guard_block(errors, guard_at - GUARD_INTERVAL, guard_at,
                             context)
                guard_at += GUARD_INTERVAL
    _guard_block(errors, guard_at - GUARD_INTERVAL, B, context)
    taps[:] = taps_fwd[::-1]
    state.y_recent[:] = opad[B - 1: B + s_len - 1][::-1]
    state.time += B
    return errors


def fxlms_block_batch(states, taps, d, mu, normalized=True, leak=0.0,
                      adapt=None, active=None, context="SessionServer",
                      workspace=None):
    """One lock-step FxLMS block across a *batch* of streaming states.

    The cross-session kernel behind :mod:`repro.serving`: per-session
    tap vectors and reference histories are stacked on a leading
    session axis ``S`` so one vectorized NLMS update services every
    session in the block — per-sample work is ``S`` fused row-wise
    operations instead of ``S`` Python-level kernel calls.

    Parameters
    ----------
    states:
        Sequence of ``S`` streaming :class:`KernelState` objects with
        identical geometry (``n_future``/``n_past``/secondary-path
        length); each keeps its own reference history, clock, and
        ringing buffer, which are advanced in place.
    taps:
        ``(S, n_taps)`` tap matrix, future-first rows, adapted in
        place.
    d:
        ``(S, B)`` disturbance block.
    mu:
        Scalar step size, or per-session ``(S,)`` array.
    adapt / active:
        Optional per-session boolean masks (default: all true) — the
        degradation controller's gates, applied *per row* so one
        degraded session freezes or mutes without touching the rest.
    workspace:
        Optional :class:`~.workspace.BatchWorkspace` scratch arena.
        With one, the call performs zero array-data allocations — every
        stack, intermediate, and mask is written in place — and the
        returned ``(errors, diverged)`` are *views into the arena*,
        valid until the next call on the same workspace.  Without one,
        a throwaway arena of exactly this batch's geometry is built, so
        both paths run the identical instruction sequence and arena
        output is bit-identical to fresh-allocation output.

    Returns
    -------
    (errors, diverged):
        ``errors`` is the ``(S, B)`` residual block; ``diverged`` a
        ``(S,)`` boolean mask of sessions whose residual went
        non-finite or past :data:`DIVERGENCE_LIMIT`.  Divergence is
        *reported*, not raised — isolating a runaway session is the
        server's job, and one bad row must not stall the batch.

    Determinism contract
    --------------------
    Every step is a row-wise numpy operation (per-row ``einsum`` dots,
    elementwise gating), so each session's row is computed by exactly
    the same instruction sequence whether ``S == 1`` or ``S == 64`` —
    batched serving is *bit-identical* to serial serving that calls
    this kernel with singleton batches (property-tested in
    ``tests/test_serving.py``).  Against the per-session
    :func:`fxlms_block` the usual vector-backend contract applies:
    ≤ 1e-10, not bit-identity (summation orders differ).
    """
    from .workspace import BatchWorkspace

    S = len(states)
    st0 = states[0]
    B = d.shape[1]
    n_future, n_past, n_taps = st0.n_future, st0.n_past, st0.n_taps
    s_len = st0.secondary_true.size

    ws = workspace
    if ws is None:
        ws = BatchWorkspace(S, B, n_future, n_past, s_len)
    elif not ws.fits(S, B, n_future, n_past, s_len):
        raise ValueError(
            f"workspace sized for (S<={ws.max_sessions}, B={ws.block_size}, "
            f"n_future={ws.n_future}, n_past={ws.n_past}, "
            f"s_len={ws.s_len}) cannot serve a batch of "
            f"(S={S}, B={B}, n_future={n_future}, n_past={n_past}, "
            f"s_len={s_len})"
        )

    if adapt is None:
        ws.adapt[:S] = True
    else:
        np.copyto(ws.adapt[:S], adapt)
    if active is None:
        ws.active[:S] = True
    else:
        np.copyto(ws.active[:S], active)
    adapt_mask = ws.adapt[:S]
    active_mask = ws.active[:S]
    inactive = np.logical_not(active_mask, out=ws.inactive[:S])
    noadapt = np.logical_not(adapt_mask, out=ws.noadapt[:S])
    ws.mu[:S] = mu
    mu_arr = ws.mu[:S]

    # Stacked, left-zero-padded reference segments: row s covers every
    # window of session s's block (same early-sample padding as the
    # single-session path).
    L = ws.seg_len
    SEG = ws.seg[:S]
    SEGF = ws.segf[:S]
    S_REV = ws.s_rev[:S]
    opad = ws.opad[:S]
    SEG.fill(0.0)
    SEGF.fill(0.0)
    opad.fill(0.0)
    for s, st in enumerate(states):
        lo0 = st.time - (n_past - 1)
        seg = st.x[max(lo0, 0): st.time + B + n_future]
        SEG[s, L - seg.size:] = seg
        segf = st.xf[max(lo0, 0): st.time + B + n_future]
        SEGF[s, L - segf.size:] = segf
        S_REV[s] = st.secondary_true[::-1]
        if s_len > 1:
            opad[s, :s_len - 1] = st.y_recent[:s_len - 1][::-1]

    W = sliding_window_view(SEG, n_taps, axis=1)    # (S, B, n_taps)
    Wf = sliding_window_view(SEGF, n_taps, axis=1)
    o_view = sliding_window_view(opad, s_len, axis=1)  # reads see writes
    taps_fwd = ws.taps_fwd[:S]
    taps_fwd[:, :] = taps[:, ::-1]

    steps = ws.steps[:S]
    if normalized:
        powers = np.einsum("sbj,sbj->sb", Wf, Wf, out=ws.powers[:S])
        powers += _EPS
        np.divide(mu_arr[:, None], powers, out=steps)
    else:
        steps[:, :] = mu_arr[:, None]

    errors = ws.errors[:S]
    ws.decay[:S, 0] = 1.0 - leak
    np.copyto(ws.decay[:S, 0], 1.0, where=noadapt)
    decay_row = ws.decay[:S]
    y, e, coef, tmp_taps = ws.y[:S], ws.e[:S], ws.coef[:S], ws.tmp_taps[:S]
    with np.errstate(all="ignore"):
        for i in range(B):
            np.einsum("sj,sj->s", W[:, i, :], taps_fwd, out=y)
            np.copyto(y, 0.0, where=inactive)
            opad[:, i + s_len - 1] = y
            np.einsum("sj,sj->s", o_view[:, i, :], S_REV, out=e)
            e += d[:, i]
            errors[:, i] = e
            np.multiply(steps[:, i], e, out=coef)
            np.copyto(coef, 0.0, where=noadapt)
            if leak:
                taps_fwd *= decay_row
            np.multiply(coef[:, None], Wf[:, i, :], out=tmp_taps)
            taps_fwd -= tmp_taps

    taps[:, :] = taps_fwd[:, ::-1]
    bad = np.isfinite(errors, out=ws.bad[:S])
    np.logical_not(bad, out=bad)
    np.abs(errors, out=ws.powers[:S])              # steps done; reuse
    np.greater(ws.powers[:S], DIVERGENCE_LIMIT, out=ws.bad2[:S])
    np.logical_or(bad, ws.bad2[:S], out=bad)
    diverged = np.any(bad, axis=1, out=ws.diverged[:S])
    for s, st in enumerate(states):
        st.y_recent[:] = opad[s, B - 1: B + s_len - 1][::-1]
        st.time += B
    return errors, diverged


def lms_run(x, d, taps, window, mu, normalized=True, leak=0.0,
            context="LmsFilter"):
    """Causal (N)LMS (vectorized); see :func:`loop.lms_run`."""
    T = x.size
    n = taps.size
    # Extend with the shift-register history so mid-stream runs resume
    # exactly; V[t] is the forward window after x[t] arrives.
    ext = np.concatenate([window[::-1], x])
    V = sliding_window_view(ext, n)[1:]
    steps = _steps(V, mu, normalized)
    taps_fwd = np.ascontiguousarray(taps[::-1])
    predictions = np.empty(T)
    errors = np.empty(T)
    d_list = d.tolist()
    step_list = steps.tolist()
    decay = 1.0 - leak
    guard_at = GUARD_INTERVAL
    with np.errstate(all="ignore"):
        for t in range(T):
            w = V[t]
            y = ddot(w, taps_fwd)
            e = d_list[t] - y
            predictions[t] = y
            errors[t] = e
            if leak:
                taps_fwd *= decay
            daxpy(w, taps_fwd, a=step_list[t] * e)
            if t + 1 == guard_at:
                _guard_block(errors, guard_at - GUARD_INTERVAL, guard_at,
                             context)
                guard_at += GUARD_INTERVAL
    _guard_block(errors, guard_at - GUARD_INTERVAL, T, context)
    taps[:] = taps_fwd[::-1]
    window[:] = ext[-n:][::-1]
    return predictions, errors


def rls_run(x, d, taps, window, P, forgetting, context="RlsFilter"):
    """Exponentially-weighted RLS with BLAS symmetric rank-1 updates.

    The O(M²) inverse-correlation recursion is inherently sequential;
    the vector backend removes the per-sample shift register by working
    in forward order (``P`` conjugated by the flip permutation, which
    leaves its identity initialization invariant) and keeps ``P`` as a
    **lower-triangular Fortran-ordered** operand for raw BLAS:

    * ``dsymv`` for ``P·u`` (half the matvec flops of ``P @ u``),
    * ``dsyr`` for the rank-1 downdate ``P -= Pu·Puᵀ/denom`` in place —
      the update *is* symmetric (``gain·Puᵀ = Pu·Puᵀ/denom``), so the
      explicit re-symmetrization the general-form loop needs per sample
      collapses to one triangle mirror after the walk.

    Contract vs :func:`loop.rls_run` unchanged: ≤ 1e-10 on
    predictions/errors/taps/``P``.
    """
    T = x.size
    n = taps.size
    ext = np.concatenate([window[::-1], x])
    V = sliding_window_view(ext, n)[1:]
    taps_fwd = np.ascontiguousarray(taps[::-1])
    P_fwd = np.asfortranarray(P[::-1, ::-1])
    lam = float(forgetting)
    inv_lam = 1.0 / lam
    predictions = np.empty(T)
    errors = np.empty(T)
    guard_at = GUARD_INTERVAL
    with np.errstate(all="ignore"):
        for t in range(T):
            u = V[t]
            y = ddot(taps_fwd, u)
            e = d[t] - y
            predictions[t] = y
            errors[t] = e
            Pu = dsymv(1.0, P_fwd, u, lower=1)
            denom = lam + ddot(u, Pu)
            daxpy(Pu, taps_fwd, a=e / denom)
            dsyr(-1.0 / denom, Pu, lower=1, a=P_fwd, overwrite_a=1)
            P_fwd *= inv_lam
            if t + 1 == guard_at:
                _guard_block(errors, guard_at - GUARD_INTERVAL, guard_at,
                             context)
                guard_at += GUARD_INTERVAL
    _guard_block(errors, guard_at - GUARD_INTERVAL, T, context)
    taps[:] = taps_fwd[::-1]
    window[:] = ext[-n:][::-1]
    # Only the lower triangle was maintained; mirror it once.
    P_full = np.tril(P_fwd) + np.tril(P_fwd, -1).T
    P[:] = P_full[::-1, ::-1]
    return predictions, errors


def apa_run(x, d, taps, window, U, d_ring, mu, epsilon,
            context="ApaFilter"):
    """Affine projection; windows and rings precomputed as views.

    The per-sample P×P Gram solve stays (it involves the adapting
    taps), via :func:`numpy.linalg.solve` instead of the scipy wrapper.
    """
    T = x.size
    n = taps.size
    order = U.shape[0]
    ext = np.concatenate([window[::-1], x])
    V = sliding_window_view(ext, n)[1:]
    ext_d = np.concatenate([d_ring[::-1], d])
    Dv = sliding_window_view(ext_d, order)[1:]     # forward desired rows
    preU = np.ascontiguousarray(U[:, ::-1])        # prior windows, forward
    pre_d = d_ring.copy()
    taps_fwd = np.ascontiguousarray(taps[::-1])
    eye = epsilon * np.eye(order)
    predictions = np.empty(T)
    errors = np.empty(T)
    guard_at = GUARD_INTERVAL
    with np.errstate(all="ignore"):
        for t in range(T):
            if t >= order - 1:
                rows = V[t - order + 1: t + 1][::-1]   # newest first
                dvec = Dv[t][::-1]
            else:
                rows = np.concatenate([V[t::-1], preU[:order - 1 - t]])
                dvec = np.concatenate([d[t::-1], pre_d[:order - 1 - t]])
            y = np.dot(taps_fwd, V[t])
            e = d[t] - y
            predictions[t] = y
            errors[t] = e
            e_vec = dvec - rows @ taps_fwd
            gram = rows @ rows.T + eye
            try:
                solved = np.linalg.solve(gram, e_vec)
            except np.linalg.LinAlgError:  # pragma: no cover - eps guards
                solved = np.linalg.lstsq(gram, e_vec, rcond=None)[0]
            taps_fwd += mu * (rows.T @ solved)
            if t + 1 == guard_at:
                _guard_block(errors, guard_at - GUARD_INTERVAL, guard_at,
                             context)
                guard_at += GUARD_INTERVAL
    _guard_block(errors, guard_at - GUARD_INTERVAL, T, context)
    taps[:] = taps_fwd[::-1]
    window[:] = ext[-n:][::-1]
    # Rebuild the rings (newest first) from the tail of the run.
    for m in range(order):
        tm = T - 1 - m
        if tm >= 0:
            U[m] = V[tm][::-1]
            d_ring[m] = ext_d[tm + order]
        else:
            U[m] = preU[-tm - 1][::-1]
            d_ring[m] = pre_d[-tm - 1]
    return predictions, errors


def multiref_run(states, taps_list, d, mu, normalized=True, leak=0.0,
                 adapt=True, context="MultiRefLancFilter"):
    """Multi-reference two-sided FxLMS; see :func:`loop.multiref_run`."""
    T = d.size
    s_true = states[0].secondary_true
    s_len = s_true.size
    s_rev = np.ascontiguousarray(s_true[::-1])
    Ws = [sliding_window_view(st.xp, st.n_taps) for st in states]
    taps_fwd = [np.ascontiguousarray(taps[::-1]) for taps in taps_list]

    if not adapt:
        outputs = np.zeros(T)
        for W, tf in zip(Ws, taps_fwd):
            outputs += W @ tf
        opad = np.concatenate([np.zeros(s_len - 1), outputs])
        errors = d + _ringing(opad, s_rev)
        _guard_block(errors, 0, T, context)
        return errors, outputs

    Wfs = [sliding_window_view(st.xfp, st.n_taps) for st in states]
    # Total filtered-window power across branches, summed branch order.
    total_power = np.zeros(T)
    for Wf in Wfs:
        total_power += np.einsum("ij,ij->i", Wf, Wf)
    steps = (mu / (total_power + _EPS) if normalized
             else np.full(T, float(mu)))

    opad = np.zeros(T + s_len - 1)
    o_view = sliding_window_view(opad, s_len)
    errors = np.empty(T)
    d_list = d.tolist()
    step_list = steps.tolist()
    decay = 1.0 - leak
    pairs = list(zip(taps_fwd, Ws, Wfs))
    guard_at = GUARD_INTERVAL
    with np.errstate(all="ignore"):
        for t in range(T):
            y = 0.0
            for tf, W, __ in pairs:
                y += ddot(W[t], tf)
            opad[t + s_len - 1] = y
            e = d_list[t] + ddot(o_view[t], s_rev)
            errors[t] = e
            c = step_list[t] * e
            for tf, __, Wf in pairs:
                if leak:
                    tf *= decay
                daxpy(Wf[t], tf, a=-c)
            if t + 1 == guard_at:
                _guard_block(errors, guard_at - GUARD_INTERVAL, guard_at,
                             context)
                guard_at += GUARD_INTERVAL
    _guard_block(errors, guard_at - GUARD_INTERVAL, T, context)
    for taps, tf in zip(taps_list, taps_fwd):
        taps[:] = tf[::-1]
    return errors, opad[s_len - 1:].copy()
