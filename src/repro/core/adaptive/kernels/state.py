"""Kernel state: the reference/filtered-reference history every engine shares.

A :class:`KernelState` is the *signal* half of an adaptive run — the
aligned reference, its filtered-x companion ``x' = ŝ * x``, the true
secondary path the anti-noise rings through, and the two-sided tap
geometry in the paper's convention ``k ∈ [-n_future, n_past - 1]``
(``k = -n_future`` multiplies the most futuristic sample
``x(t + n_future)``).  The *algorithm* half — which backend walks that
state and how — lives in :mod:`.loop` and :mod:`.vector`.

Two construction modes mirror the two ways the engines consume signals:

* :meth:`KernelState.batch` — the whole aligned reference is known up
  front (``LancFilter.run`` and friends).  The filtered reference is one
  ``np.convolve`` and both arrays are pre-padded so every window
  ``x[t - n_past + 1 .. t + n_future]`` exists (exactly the seed
  :func:`repro.core.adaptive.base.padded_reference` layout — the loop
  backend stays bit-identical to the historical engines).
* :meth:`KernelState.streaming` — samples arrive in blocks
  (``StreamingLanc``).  :meth:`extend` maintains the filtered reference
  incrementally with :func:`scipy.signal.lfilter` state, and
  :attr:`time` / :attr:`y_recent` carry the processed-sample clock and
  the anti-noise still ringing through the secondary path between
  blocks.

Both modes expose the same window accessors, so backends are written
once against the ``k``-convention and do not care which mode fed them.
"""

from __future__ import annotations

import numpy as np

from ....errors import ConfigurationError
from ....utils.validation import (
    check_impulse_response,
    check_non_negative_int,
    check_positive_int,
    check_waveform,
)
from ..base import padded_reference

__all__ = ["KernelState"]


class KernelState:
    """Signal state for a two-sided (lookahead-aware) FxLMS kernel.

    Use the :meth:`batch` / :meth:`streaming` constructors; the bare
    ``__init__`` is an implementation detail.

    Attributes
    ----------
    n_future / n_past:
        Tap geometry: ``k ∈ [-n_future, n_past - 1]``.
    secondary_estimate:
        ``ŝ`` — the filter's model of the speaker→error-mic path, used
        to build the filtered reference.
    secondary_true:
        ``s`` — the physical path the anti-noise actually rings through.
    x / xf:
        Raw aligned reference and filtered reference (unpadded,
        error-mic time base).
    xp / off / xfp / offf:
        Batch mode only: zero-padded arrays and offsets from
        :func:`repro.core.adaptive.base.padded_reference` (sample
        ``x[t]`` lives at ``xp[t + off]``).
    y_recent:
        Anti-noise output history, newest first — what is still ringing
        through ``secondary_true``.  Persisted across blocks in
        streaming mode; batch runs start from silence.
    time:
        Streaming mode: number of error-mic samples processed so far.
    """

    def __init__(self, n_future, n_past, secondary_estimate,
                 secondary_true, mode):
        self.n_future = check_non_negative_int("n_future", n_future)
        self.n_past = check_positive_int("n_past", n_past)
        self.secondary_estimate = check_impulse_response(
            "secondary_estimate", secondary_estimate
        )
        self.secondary_true = (
            self.secondary_estimate if secondary_true is None
            else check_impulse_response("secondary_true", secondary_true)
        )
        if mode not in ("batch", "streaming"):
            raise ConfigurationError(f"unknown KernelState mode {mode!r}")
        self.mode = mode
        self.n_taps = self.n_future + self.n_past
        self.x = np.zeros(0)
        self.xf = np.zeros(0)
        self.xp = self.off = self.xfp = self.offf = None
        self.y_recent = np.zeros(self.secondary_true.size)
        self.time = 0
        # scipy.signal.lfilter carry for the incremental filtered-x.
        self._zi = (
            np.zeros(self.secondary_estimate.size - 1)
            if self.secondary_estimate.size > 1 else np.zeros(0)
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def batch(cls, reference, n_future, n_past, secondary_estimate,
              secondary_true=None):
        """State over a fully-known aligned reference.

        Precomputes the filtered reference (``np.convolve``, truncated
        to the signal length) and the padded layouts the historical
        per-sample loop indexed — the loop backend reproduces the seed
        engines bit for bit.
        """
        state = cls(n_future, n_past, secondary_estimate, secondary_true,
                    mode="batch")
        x = check_waveform("reference", reference)
        T = x.size
        x_filtered = np.convolve(x, state.secondary_estimate)[:T]
        state.x = x
        state.xf = x_filtered
        state.xp, state.off = padded_reference(x, state.n_future,
                                               state.n_past)
        state.xfp, state.offf = padded_reference(x_filtered, state.n_future,
                                                 state.n_past)
        return state

    @classmethod
    def streaming(cls, n_future, n_past, secondary_estimate,
                  secondary_true=None):
        """Empty state to be fed incrementally via :meth:`extend`."""
        return cls(n_future, n_past, secondary_estimate, secondary_true,
                   mode="streaming")

    # ------------------------------------------------------------------
    # Streaming maintenance
    # ------------------------------------------------------------------
    def extend(self, reference_block):
        """Append newly arrived aligned-reference samples.

        Maintains ``xf = ŝ * x`` incrementally (filter state carried in
        ``lfilter`` initial conditions), exactly as the seed
        ``StreamingLanc.feed`` did.
        """
        if self.mode != "streaming":
            raise ConfigurationError(
                "extend() is only valid on a streaming KernelState"
            )
        block = check_waveform("reference_block", reference_block,
                               min_length=1)
        from scipy import signal as sps

        if self._zi.size:
            filtered, self._zi = sps.lfilter(
                self.secondary_estimate, [1.0], block, zi=self._zi
            )
        else:
            filtered = self.secondary_estimate[0] * block
        self.x = np.concatenate([self.x, block])
        self.xf = np.concatenate([self.xf, filtered])

    def fed(self):
        """Number of reference samples delivered so far."""
        return self.x.size

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self):
        """The complete mutable signal state, as private array copies.

        Everything a mid-run kernel state owns beyond its construction
        parameters: the delivered reference and its filtered-x
        companion, the processed-sample clock, the ringing anti-noise
        buffer, and the ``lfilter`` carry.  Restoring the returned
        mapping with :meth:`restore` on an identically constructed
        state resumes processing **bit-identically** — the contract the
        serving checkpoint layer (``repro.serving.checkpoint``) builds
        on, property-tested in ``tests/test_checkpoint.py`` across
        both kernel backends.
        """
        return {
            "x": self.x.copy(),
            "xf": self.xf.copy(),
            "time": int(self.time),
            "y_recent": self.y_recent.copy(),
            "zi": self._zi.copy(),
        }

    def restore(self, snapshot):
        """Apply a :meth:`snapshot` taken from an equivalent state.

        The state must have been constructed with the same geometry
        (``n_future``/``n_past``) and secondary paths as the snapshot's
        origin; only the mutable signal state is replaced.  Batch-mode
        states are rejected — their arrays are construction inputs, not
        evolving state.
        """
        if self.mode != "streaming":
            raise ConfigurationError(
                "restore() is only valid on a streaming KernelState"
            )
        y_recent = np.asarray(snapshot["y_recent"], dtype=np.float64)
        if y_recent.shape != self.y_recent.shape:
            raise ConfigurationError(
                f"snapshot y_recent has shape {y_recent.shape}; this "
                f"state expects {self.y_recent.shape} "
                "(secondary-path length mismatch)"
            )
        zi = np.asarray(snapshot["zi"], dtype=np.float64)
        if zi.shape != self._zi.shape:
            raise ConfigurationError(
                f"snapshot zi has shape {zi.shape}; this state expects "
                f"{self._zi.shape} (secondary-estimate length mismatch)"
            )
        self.x = np.asarray(snapshot["x"], dtype=np.float64).copy()
        self.xf = np.asarray(snapshot["xf"], dtype=np.float64).copy()
        self.time = int(snapshot["time"])
        self.y_recent = y_recent.copy()
        self._zi = zi.copy()

    def peek_future(self, n_samples):
        """The next ``n_samples`` of not-yet-processed reference."""
        start = self.time
        return self.x[start: start + int(n_samples)].copy()

    # ------------------------------------------------------------------
    # Window accessors (the paper's k-convention)
    # ------------------------------------------------------------------
    def window(self, t):
        """Reference window at time ``t``, future-first.

        ``window[i] = x(t + n_future - i)`` so ``y(t) = taps · window``
        with taps stored future-first (``taps[i] ↔ k = i - n_future``).
        Valid in batch mode for any ``t`` in range; primarily a
        documentation/testing helper — backends use faster layouts.
        """
        return self._window_from(self.xp, self.off, t)

    def filtered_window(self, t):
        """Filtered-reference window at time ``t``, future-first."""
        return self._window_from(self.xfp, self.offf, t)

    def _window_from(self, padded, offset, t):
        if self.mode != "batch":
            raise ConfigurationError(
                "window accessors need a batch KernelState"
            )
        start = t + offset - (self.n_past - 1)
        stop = t + offset + self.n_future + 1
        return padded[start:stop][::-1]
