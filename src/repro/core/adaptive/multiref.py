"""Multi-reference LANC — toward the paper's multi-source future work.

Paper §6: "With multiple noise sources, the problem is involved,
requiring either multiple microphones (one for each noise channel), or
source separation ... We believe the benefits of looking ahead into
future samples will be valuable for multiple sources as well."

This module implements the first approach the paper names: **one
reference microphone (relay) per noise source**.  The anti-noise becomes
the sum of per-reference two-sided filters,

    α(t) = Σ_m Σ_k  w_m(k) · x_m(t − k),       k ∈ [−N_m, L)

and the filtered-x gradient update runs on every branch against the one
shared error signal — the standard multiple-input FxLMS, here with each
branch allowed its own anti-causal budget ``N_m`` (relays at different
distances offer different lookaheads).
"""

from __future__ import annotations

import time

import numpy as np

from ... import obs
from ...errors import ConfigurationError
from ...utils.validation import (
    check_impulse_response,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_waveform,
)
from . import kernels
from .base import (
    AdaptationResult,
    mse_curve,
    record_run_metrics,
)

__all__ = ["MultiRefLancFilter"]


class MultiRefLancFilter:
    """LANC with one reference branch per relay/noise source.

    Parameters
    ----------
    n_futures:
        Anti-causal tap count per branch (sequence; one entry per
        reference).
    n_past:
        Causal tap count, shared by all branches.
    secondary_path:
        Estimate of ``h_se`` (one speaker, one error mic — the update
        filter is shared).
    mu:
        NLMS step, normalized by the *total* filtered-reference window
        power across branches (keeps the coupled update stable).
    leak:
        Leaky-LMS decay.
    kernel_backend:
        Kernel backend for :meth:`run` (``None`` = env var / default).
    """

    def __init__(self, n_futures, n_past, secondary_path, mu=0.2,
                 normalized=True, leak=0.0, kernel_backend=None):
        if not n_futures:
            raise ConfigurationError("need at least one reference branch")
        self.n_futures = [check_non_negative_int("n_future", n)
                          for n in n_futures]
        self.n_past = check_positive_int("n_past", n_past)
        self.secondary_path = check_impulse_response(
            "secondary_path", secondary_path
        )
        self.mu = check_positive("mu", mu)
        self.normalized = bool(normalized)
        if not 0.0 <= leak < 1.0:
            raise ConfigurationError(f"leak must be in [0, 1), got {leak}")
        self.leak = float(leak)
        if kernel_backend is not None:
            kernels.resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        #: Per-branch tap vectors, each stored future-first.
        self.taps = [np.zeros(n + self.n_past) for n in self.n_futures]

    @property
    def n_branches(self):
        """Number of reference branches."""
        return len(self.n_futures)

    def get_taps(self):
        """Copies of every branch's tap vector."""
        return [t.copy() for t in self.taps]

    def set_taps(self, taps_list):
        """Overwrite all branches (profile-cache load)."""
        if len(taps_list) != self.n_branches:
            raise ConfigurationError(
                f"expected {self.n_branches} tap vectors, got "
                f"{len(taps_list)}"
            )
        for i, (current, new) in enumerate(zip(self.taps, taps_list)):
            new = np.asarray(new, dtype=np.float64)
            if new.shape != current.shape:
                raise ConfigurationError(
                    f"branch {i}: expected shape {current.shape}, got "
                    f"{new.shape}"
                )
            self.taps[i] = new.copy()

    def reset(self):
        """Zero every branch."""
        for taps in self.taps:
            taps[:] = 0.0

    def run(self, references, disturbance, secondary_path_true=None,
            adapt=True):
        """Run the multi-reference ANC loop.

        Parameters
        ----------
        references:
            Sequence of aligned reference waveforms, one per branch,
            all the same length as ``disturbance``.  Alignment contract
            per branch matches :class:`LancFilter`.
        disturbance:
            Noise mixture at the error microphone.
        secondary_path_true:
            Physical ``h_se`` (defaults to the estimate).

        Returns
        -------
        AdaptationResult
            ``taps`` holds the *concatenated* final tap vectors.
        """
        if len(references) != self.n_branches:
            raise ConfigurationError(
                f"expected {self.n_branches} references, got "
                f"{len(references)}"
            )
        d = check_waveform("disturbance", disturbance)
        xs = []
        for i, ref in enumerate(references):
            x = check_waveform(f"references[{i}]", ref)
            if x.size != d.size:
                raise ConfigurationError(
                    f"references[{i}] length {x.size} != disturbance "
                    f"length {d.size}"
                )
            xs.append(x)
        s_true = (
            self.secondary_path if secondary_path_true is None
            else check_impulse_response("secondary_path_true",
                                        secondary_path_true)
        )

        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None

        backend = kernels.resolve_backend_name(self.kernel_backend)
        states = [
            kernels.KernelState.batch(x, n_future, self.n_past,
                                      self.secondary_path, s_true)
            for x, n_future in zip(xs, self.n_futures)
        ]
        errors, outputs = kernels.multiref_run(
            states, self.taps, d, self.mu, backend=backend,
            normalized=self.normalized, leak=self.leak, adapt=adapt,
            context="MultiRefLancFilter",
        )

        if enabled:
            record_run_metrics("multireflancfilter", errors, d,
                               time.perf_counter() - t_start,
                               backend=backend)
        return AdaptationResult(
            error=errors,
            output=outputs,
            taps=np.concatenate(self.taps),
            mse_trajectory=mse_curve(errors),
        )
