"""LANC — Lookahead-Aware Noise Cancellation (the paper's Algorithm 1).

LANC is filtered-x LMS whose adaptive filter carries *non-causal* taps:
``h_AF(k)`` for ``k ∈ [-N, L-1]``, where the ``N`` anti-causal taps
multiply reference samples up to ``x(t + N)``.  Those samples exist at
the ear-device because the IoT relay forwards the waveform over RF,
which outruns the acoustic wavefront by the lookahead
``(d_e - d_r) / v`` (paper Eq. 4).  The anti-causal taps are what let
the filter realize the non-causal inverse ``h_nr^{-1}`` inside the
optimal solution ``h_AF = -h_se^{-1} * h_ne * h_nr^{-1}`` (paper Eq. 2).

Indexing contract
-----------------
The ``reference`` given to :meth:`LancFilter.run` must be *aligned to
the error microphone's time base*: ``reference[t]`` is the reference-mic
sample whose wavefront reaches the error mic at time ``t``.  (The
:class:`repro.core.system.MuteSystem` performs that alignment with the
measured acoustic lead, exactly the role of the paper's GCC-PHAT
synchronization.)  Under this alignment, "N future samples" are
physically available whenever ``N ≤ acoustic lead − pipeline latency``.

With ``n_future = 0`` the class *is* conventional causal FxLMS — the
baselines use it that way.
"""

from __future__ import annotations

import time

import numpy as np

from ... import obs
from ...errors import ConfigurationError
from ...utils.validation import (
    check_impulse_response,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_same_length,
    check_waveform,
)
from . import kernels
from .base import (
    AdaptationResult,
    mse_curve,
    record_block_metrics,
    record_run_metrics,
)

__all__ = ["LancFilter", "FxlmsFilter"]


class LancFilter:
    """Lookahead-aware filtered-x LMS adaptive canceler.

    Parameters
    ----------
    n_future:
        ``N`` — number of anti-causal taps (0 = conventional FxLMS).
    n_past:
        ``L`` — number of causal taps (including the ``k = 0`` tap).
    secondary_path:
        Estimate of ``h_se`` (speaker→error-mic), used to filter the
        reference for the update (the "filtered-x" of FxLMS) — the paper
        estimates it a priori with a preamble probe.
    mu:
        Adaptation step; normalized (NLMS-style) by default.
    normalized:
        Normalize the step by the filtered-reference window power.
    leak:
        Leaky-LMS decay, guards against tap drift on narrowband inputs.
    kernel_backend:
        Kernel backend name (``"loop"`` / ``"vector"``); ``None`` defers
        to ``REPRO_KERNEL_BACKEND`` then the default — see
        :mod:`repro.core.adaptive.kernels`.
    """

    def __init__(self, n_future, n_past, secondary_path, mu=0.5,
                 normalized=True, leak=0.0, kernel_backend=None):
        self.n_future = check_non_negative_int("n_future", n_future)
        self.n_past = check_positive_int("n_past", n_past)
        self.secondary_path = check_impulse_response(
            "secondary_path", secondary_path
        )
        self.mu = check_positive("mu", mu)
        self.normalized = bool(normalized)
        if not 0.0 <= leak < 1.0:
            raise ConfigurationError(f"leak must be in [0, 1), got {leak}")
        self.leak = float(leak)
        if kernel_backend is not None:
            # Validate eagerly; resolution happens per run (env may change).
            kernels.resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        self.n_taps = self.n_future + self.n_past
        #: Tap values, stored future-first: ``taps[i] ↔ k = i - n_future``.
        self.taps = np.zeros(self.n_taps)

    # ------------------------------------------------------------------
    # Tap access in the paper's indexing
    # ------------------------------------------------------------------
    def tap(self, k):
        """Tap ``h_AF(k)``, ``k ∈ [-n_future, n_past - 1]``."""
        if not -self.n_future <= k < self.n_past:
            raise ConfigurationError(
                f"tap index {k} outside [-{self.n_future}, {self.n_past - 1}]"
            )
        return float(self.taps[k + self.n_future])

    def get_taps(self):
        """Copy of the tap vector (future-first storage order)."""
        return self.taps.copy()

    def set_taps(self, values):
        """Overwrite the tap vector — the profile cache's "load" operation."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_taps,):
            raise ConfigurationError(
                f"expected {self.n_taps} taps, got shape {values.shape}"
            )
        self.taps = values.copy()

    def reset(self):
        """Zero the taps."""
        self.taps[:] = 0.0

    # ------------------------------------------------------------------
    # Batch physical simulation
    # ------------------------------------------------------------------
    def run(self, reference, disturbance, secondary_path_true=None,
            adapt=True, adapt_mask=None):
        """Run the full ANC loop over aligned waveforms.

        Per sample (paper Algorithm 1): compute the anti-noise
        ``α(t) = Σ_k h_AF(k) x(t-k)``; the speaker output passes through
        the *true* secondary path to the error mic, where it sums with
        the disturbance ``d(t)``; the measured error drives the filtered-x
        gradient update ``h_AF(k) ← h_AF(k) − µ e(t) x'(t−k)``.

        Parameters
        ----------
        reference:
            Error-mic-time-aligned reference ``x`` (see module docstring).
        disturbance:
            ``d(t) = (h_ne * n)(t)`` — noise at the error mic with the
            canceler off.
        secondary_path_true:
            Physical ``h_se``; defaults to the filter's estimate (i.e. a
            perfectly identified secondary path).
        adapt:
            If false, taps are frozen (evaluation of a cached profile).
        adapt_mask:
            Optional per-sample boolean; adaptation only where true.

        Returns
        -------
        AdaptationResult
            ``error`` is the residual at the error mic (what the ear
            hears), ``output`` the anti-noise waveform.
        """
        x = check_waveform("reference", reference)
        d = check_waveform("disturbance", disturbance)
        check_same_length("reference", x, "disturbance", d)
        s_true = (
            self.secondary_path if secondary_path_true is None
            else check_impulse_response("secondary_path_true",
                                        secondary_path_true)
        )
        if adapt_mask is not None:
            adapt_mask = np.asarray(adapt_mask, dtype=bool)
            if adapt_mask.shape != x.shape:
                raise ConfigurationError(
                    "adapt_mask must match the signal length"
                )

        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None

        backend = kernels.resolve_backend_name(self.kernel_backend)
        state = kernels.KernelState.batch(
            x, self.n_future, self.n_past, self.secondary_path, s_true
        )
        errors, outputs = kernels.fxlms_run(
            state, self.taps, d, self.mu, backend=backend,
            normalized=self.normalized, leak=self.leak, adapt=adapt,
            adapt_mask=adapt_mask, context="LancFilter",
        )

        if enabled:
            record_run_metrics(type(self).__name__.lower(), errors, d,
                               time.perf_counter() - t_start,
                               backend=backend)
        return AdaptationResult(
            error=errors,
            output=outputs,
            taps=self.taps.copy(),
            mse_trajectory=mse_curve(errors),
        )


class FxlmsFilter(LancFilter):
    """Conventional causal filtered-x LMS (``n_future = 0``).

    The algorithm inside today's ANC headphones; exists as a named type
    so baselines read as what they are.
    """

    def __init__(self, n_taps, secondary_path, mu=0.5, normalized=True,
                 leak=0.0, kernel_backend=None):
        super().__init__(n_future=0, n_past=n_taps,
                         secondary_path=secondary_path, mu=mu,
                         normalized=normalized, leak=leak,
                         kernel_backend=kernel_backend)


class StreamingLanc:
    """Streaming driver for a :class:`LancFilter`.

    Decouples *feeding* the aligned reference (which the relay delivers
    ``n_future`` samples ahead of acoustic time) from *processing* error
    samples, so callers can act between blocks — the predictive profile
    switcher swaps taps here, exactly when the lookahead buffer says the
    sound is about to change.

    Typical loop::

        stream = StreamingLanc(filter, secondary_path_true=s)
        stream.feed(reference[:n_future])              # prime the lookahead
        for t0 in range(0, T, block):
            stream.feed(reference[t0 + n_future : t0 + block + n_future])
            err = stream.process(disturbance[t0 : t0 + block])

    (or simply ``feed`` everything up front; ``process`` never reads past
    ``time + n_future``.)
    """

    def __init__(self, lanc_filter, secondary_path_true=None):
        if not isinstance(lanc_filter, LancFilter):
            raise ConfigurationError("lanc_filter must be a LancFilter")
        self.filter = lanc_filter
        self.s_true = (
            lanc_filter.secondary_path if secondary_path_true is None
            else check_impulse_response("secondary_path_true",
                                        secondary_path_true)
        )
        # All signal history (reference, filtered reference, ringing
        # anti-noise, the acoustic clock) lives in the kernel state.
        self._state = kernels.KernelState.streaming(
            lanc_filter.n_future, lanc_filter.n_past,
            lanc_filter.secondary_path, self.s_true,
        )
        self.errors = []

    @property
    def time(self):
        """Number of acoustic samples processed so far."""
        return self._state.time

    def feed(self, reference_block):
        """Deliver newly arrived aligned-reference samples."""
        self._state.extend(reference_block)

    def peek_future(self, n_samples):
        """The next ``n_samples`` of not-yet-processed reference.

        This is the lookahead buffer's glimpse of what is about to reach
        the ear — the input to profile classification.
        """
        return self._state.peek_future(n_samples)

    def process(self, disturbance_block, adapt=True, active=True):
        """Process a block of acoustic time; returns the error block.

        Parameters
        ----------
        disturbance_block : array_like
            ``d(t)`` samples for the block.
        adapt : bool
            If false, taps are frozen for the block (the degradation
            controller's *feedback* mode).
        active : bool
            If false, the anti-noise speaker is not driven this block:
            the filter output is zero, though anti-noise already in
            flight still rings through the secondary path (the
            controller's *passive* mode).  The reference must still
            have been fed — time advances regardless.

        Notes
        -----
        With observability enabled, each call is one observation in the
        ``adaptive.block_update_s{engine=streaminglanc}`` histogram —
        the per-block latency the timing-budget report compares against
        the real-time deadline.
        """
        d = check_waveform("disturbance_block", disturbance_block,
                           min_length=1)
        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None
        f = self.filter
        backend = kernels.resolve_backend_name(f.kernel_backend)
        errors = kernels.fxlms_block(
            self._state, f.taps, d, f.mu, backend=backend,
            normalized=f.normalized, leak=f.leak, adapt=adapt,
            active=active, context="StreamingLanc",
        )
        self.errors.append(errors)
        if enabled:
            record_block_metrics("streaminglanc",
                                 time.perf_counter() - t_start, d.size,
                                 backend=backend)
        return errors

    def error_signal(self):
        """All processed error samples as one array."""
        if not self.errors:
            return np.zeros(0)
        return np.concatenate(self.errors)
