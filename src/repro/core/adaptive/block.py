"""Block LANC — throughput for the paper's "faster DSP" remark.

The paper caps cancellation at 4 kHz because its DSP can only finish the
per-sample LANC update within a 125 µs sampling interval, and notes that
"a faster DSP will ease the problem".  The classic way to buy that speed
in software is *block* adaptive filtering: freeze the taps for a block
of ``B`` samples, generate the block's anti-noise with one convolution,
and apply one accumulated gradient update per block.  For block lengths
well below the filter's convergence time the trajectory closely tracks
the sample-by-sample algorithm, at a fraction of the cost — in this
implementation, one-to-two orders of magnitude faster than
:class:`LancFilter.run` thanks to vectorized convolutions.

The block update is the standard Block-FxLMS gradient::

    grad(k) = Σ_{t∈block} e(t) · x'(t − k),     k ∈ [−N, L)

computed with a single correlation, normalized by the block's average
filtered-reference power.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import signal as sps

from ... import obs
from ...errors import ConfigurationError
from ...utils.validation import (
    check_impulse_response,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_same_length,
    check_waveform,
)
from .base import AdaptationResult, mse_curve, record_run_metrics

__all__ = ["BlockLancFilter"]


class BlockLancFilter:
    """Block-updating lookahead-aware FxLMS.

    Parameters match :class:`LancFilter` plus ``block_size``.  The taps
    are stored future-first exactly like :class:`LancFilter`, so tap
    vectors can be moved between the two (the profile cache does not
    care which engine produced them).
    """

    def __init__(self, n_future, n_past, secondary_path, mu=0.2,
                 block_size=64, leak=0.0):
        self.n_future = check_non_negative_int("n_future", n_future)
        self.n_past = check_positive_int("n_past", n_past)
        self.secondary_path = check_impulse_response(
            "secondary_path", secondary_path
        )
        self.mu = check_positive("mu", mu)
        self.block_size = check_positive_int("block_size", block_size)
        if not 0.0 <= leak < 1.0:
            raise ConfigurationError(f"leak must be in [0, 1), got {leak}")
        self.leak = float(leak)
        self.n_taps = self.n_future + self.n_past
        self.taps = np.zeros(self.n_taps)

    def get_taps(self):
        """Copy of the tap vector (future-first, LancFilter-compatible)."""
        return self.taps.copy()

    def set_taps(self, values):
        """Overwrite the taps (e.g. from a LancFilter or a cache)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_taps,):
            raise ConfigurationError(
                f"expected {self.n_taps} taps, got shape {values.shape}"
            )
        self.taps = values.copy()

    def reset(self):
        """Zero the taps."""
        self.taps[:] = 0.0

    def _kernel(self):
        """Convolution kernel for the forward path.

        With the reference segment ``seg[p] = x(start + p − L + 1)``,
        ``np.convolve(seg, taps, 'valid')[j] = Σ_i taps[i]·x(t + N − i)``
        at ``t = start + j`` — exactly the two-sided filter output, with
        the future-first tap storage acting as the kernel directly.
        """
        return self.taps

    def run(self, reference, disturbance, secondary_path_true=None):
        """Run the block ANC loop over aligned waveforms.

        Same signal contract as :meth:`LancFilter.run`; returns an
        :class:`AdaptationResult`.
        """
        x = check_waveform("reference", reference)
        d = check_waveform("disturbance", disturbance)
        check_same_length("reference", x, "disturbance", d)
        s_true = (
            self.secondary_path if secondary_path_true is None
            else check_impulse_response("secondary_path_true",
                                        secondary_path_true)
        )
        T = x.size
        B = self.block_size
        N, L = self.n_future, self.n_past

        # Filtered reference (x' = s_hat * x), padded like the reference.
        xf = np.convolve(x, self.secondary_path)[:T]
        xp = np.concatenate([np.zeros(L - 1), x, np.zeros(N)])
        xfp = np.concatenate([np.zeros(L - 1), xf, np.zeros(N)])

        errors = np.empty(T)
        outputs = np.empty(T)
        zi = np.zeros(max(s_true.size - 1, 0))

        enabled = obs.enabled()
        block_hist = (
            obs.get_registry().histogram("adaptive.block_update_s",
                                         engine="blocklancfilter")
            if enabled else None
        )
        run_start = time.perf_counter() if enabled else None

        for start in range(0, T, B):
            if enabled:
                block_start = time.perf_counter()
            stop = min(start + B, T)
            n = stop - start
            # Reference slice covering taps k ∈ [-N, L) for this block:
            # acoustic times [start - L + 1, stop - 1 + N].
            seg = xp[start: stop + L - 1 + N]
            kernel = self._kernel()
            y = np.convolve(seg, kernel, mode="valid")[:n]
            outputs[start:stop] = y
            if zi.size:
                through, zi = sps.lfilter(s_true, [1.0], y, zi=zi)
            else:
                through = s_true[0] * y
            e = d[start:stop] + through
            errors[start:stop] = e
            if not np.all(np.isfinite(e)) or np.max(np.abs(e)) > 1e6:
                from ...errors import ConvergenceError

                raise ConvergenceError(
                    "BlockLancFilter diverged — reduce mu or block_size"
                )
            # Accumulated gradient: grad[k] = sum_t e(t) xf(t-k).
            segf = xfp[start: stop + L - 1 + N]
            grad = np.correlate(segf, e, mode="valid")[: self.n_taps][::-1]
            power = float(np.dot(segf, segf)) / max(segf.size, 1) \
                * self.n_taps
            step = self.mu / (power + 1e-8)
            if self.leak:
                self.taps *= (1.0 - self.leak) ** n
            self.taps -= step * grad
            if enabled:
                block_hist.observe(time.perf_counter() - block_start)

        if enabled:
            record_run_metrics("blocklancfilter", errors, d,
                               time.perf_counter() - run_start)
        return AdaptationResult(
            error=errors,
            output=outputs,
            taps=self.taps.copy(),
            mse_trajectory=mse_curve(errors),
        )
