"""Classical LMS / NLMS adaptive filters (causal, single-channel).

These are the textbook engines (Haykin & Widrow, cited as [32] in the
paper) used for tasks *around* the headline algorithm: secondary-path
identification, generic system ID in tests, and as the conventional-ANC
inner loop.  The lookahead-aware variant lives in :mod:`.lanc`.
"""

from __future__ import annotations

import time

import numpy as np

from ... import obs
from ...utils.validation import (
    check_positive,
    check_positive_int,
    check_same_length,
    check_waveform,
)
from . import kernels
from .base import (
    AdaptationResult,
    effective_step,
    guard_divergence,
    mse_curve,
    record_run_metrics,
)

__all__ = ["LmsFilter", "identify_system"]


class LmsFilter:
    """Causal transversal LMS/NLMS filter.

    Predicts a desired signal ``d(t)`` from the recent input window
    ``[x(t), ..., x(t - n_taps + 1)]`` and adapts by stochastic gradient
    descent on the squared prediction error.

    Parameters
    ----------
    n_taps:
        Filter length.
    mu:
        Step size; with ``normalized=True`` this is the NLMS relative
        step (stable for ``0 < mu < 2``).
    normalized:
        Use NLMS (power-normalized step).  Strongly recommended for
        non-stationary inputs like speech.
    leak:
        Leaky-LMS coefficient decay per update (0 = none).
    kernel_backend:
        Kernel backend for :meth:`run` (``None`` = env var / default;
        see :mod:`repro.core.adaptive.kernels`).  :meth:`step` is always
        the per-sample reference path.
    """

    def __init__(self, n_taps, mu=0.5, normalized=True, leak=0.0,
                 kernel_backend=None):
        self.n_taps = check_positive_int("n_taps", n_taps)
        self.mu = check_positive("mu", mu)
        self.normalized = bool(normalized)
        if not 0.0 <= leak < 1.0:
            raise ValueError(f"leak must be in [0, 1), got {leak}")
        self.leak = float(leak)
        if kernel_backend is not None:
            kernels.resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        self.taps = np.zeros(self.n_taps)
        self._window = np.zeros(self.n_taps)  # newest first

    def reset(self):
        """Zero the taps and the input window."""
        self.taps[:] = 0.0
        self._window[:] = 0.0

    def step(self, x_sample, d_sample):
        """One sample of predict-then-adapt.

        Returns
        -------
        (prediction, error)
        """
        self._window[1:] = self._window[:-1]
        self._window[0] = x_sample
        prediction = float(np.dot(self.taps, self._window))
        error = float(d_sample) - prediction
        guard_divergence(error, "LmsFilter")
        step = effective_step(self.mu, self._window, self.normalized)
        if self.leak:
            self.taps *= (1.0 - self.leak)
        self.taps += step * error * self._window
        return prediction, error

    def run(self, x, d):
        """Adapt over whole waveforms; returns an :class:`AdaptationResult`.

        ``result.error`` here is the *prediction* error ``d - y`` (for
        system ID, the misadjustment); ``result.output`` the prediction.
        """
        x = check_waveform("x", x)
        d = check_waveform("d", d)
        check_same_length("x", x, "d", d)
        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None
        backend = kernels.resolve_backend_name(self.kernel_backend)
        predictions, errors = kernels.lms_run(
            x, d, self.taps, self._window, self.mu, backend=backend,
            normalized=self.normalized, leak=self.leak,
            context="LmsFilter",
        )
        if enabled:
            record_run_metrics("lmsfilter", errors, d,
                               time.perf_counter() - t_start,
                               backend=backend)
        return AdaptationResult(
            error=errors,
            output=predictions,
            taps=self.taps.copy(),
            mse_trajectory=mse_curve(errors),
        )


def identify_system(x, d, n_taps, mu=0.5, n_passes=2):
    """Estimate the FIR system mapping ``x`` to ``d``.

    Runs NLMS over the data ``n_passes`` times (re-using the learned taps)
    and returns the tap estimate — the workhorse behind secondary-path
    estimation.
    """
    n_passes = check_positive_int("n_passes", n_passes)
    lms = LmsFilter(n_taps=n_taps, mu=mu, normalized=True)
    result = None
    for __ in range(n_passes):
        result = lms.run(x, d)
    return result.taps
