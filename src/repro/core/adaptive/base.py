"""Shared machinery for the adaptive filters.

Tap-index convention (matches the paper's Algorithm 1): a filter has
``n_future`` anti-causal taps and ``n_past`` causal taps, indexed
``k ∈ [-n_future, n_past - 1]``; its output is::

    y(t) = sum_k  w[k] * x(t - k)

so ``k = -n_future`` multiplies the most futuristic sample
``x(t + n_future)``.  Internally taps are stored oldest-*future*-first:
``taps[0] ↔ k = -n_future`` ... ``taps[-1] ↔ k = n_past - 1``, which
matches the oldest-first window returned by
:meth:`repro.utils.buffers.LookaheadBuffer.window` *reversed* — see
:func:`tap_window` for the exact pairing used throughout.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ... import obs
from ...errors import ConvergenceError
from ...utils.validation import (
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_waveform,
)

__all__ = ["TapVector", "AdaptationResult", "padded_reference",
           "tap_window", "record_run_metrics", "record_block_metrics"]

#: Error magnitude beyond which a filter is declared divergent.
DIVERGENCE_LIMIT = 1e6


@dataclasses.dataclass
class TapVector:
    """A two-sided tap vector with paper-style indexing helpers."""

    n_future: int
    n_past: int
    values: np.ndarray | None = None

    def __post_init__(self):
        check_non_negative_int("n_future", self.n_future)
        check_positive_int("n_past", self.n_past)
        if self.values is None:
            self.values = np.zeros(self.n_future + self.n_past)
        else:
            self.values = np.asarray(self.values, dtype=np.float64)
            if self.values.shape != (self.n_future + self.n_past,):
                raise ConvergenceError(
                    "tap vector has wrong length "
                    f"{self.values.shape} != ({self.n_future + self.n_past},)"
                )

    def __len__(self):
        return self.values.size

    def tap(self, k):
        """Tap value at paper index ``k ∈ [-n_future, n_past - 1]``."""
        return float(self.values[k + self.n_future])

    def set_tap(self, k, value):
        """Set tap at paper index ``k``."""
        self.values[k + self.n_future] = value

    def copy(self):
        """Deep copy (used by the profile cache)."""
        return TapVector(self.n_future, self.n_past, self.values.copy())


@dataclasses.dataclass
class AdaptationResult:
    """Outcome of a batch adaptation run.

    Attributes
    ----------
    error:
        Residual at the error microphone, per sample.
    output:
        Filter output (the anti-noise fed to the speaker).
    taps:
        Final tap values.
    mse_trajectory:
        Windowed mean-square error over time (convergence curve,
        Figures 7/8).
    """

    error: np.ndarray
    output: np.ndarray
    taps: np.ndarray
    mse_trajectory: np.ndarray

    def converged_error(self, fraction=0.25):
        """RMS of the trailing ``fraction`` of the error (post-convergence)."""
        n = max(int(self.error.size * fraction), 1)
        tail = self.error[-n:]
        return float(np.sqrt(np.mean(np.square(tail))))


def padded_reference(x, n_future, n_past):
    """Pad ``x`` so every window ``x[t-n_past+1 .. t+n_future]`` exists.

    Returns ``(padded, offset)`` where sample ``x[t]`` lives at
    ``padded[t + offset]``.
    """
    x = check_waveform("x", x)
    n_future = check_non_negative_int("n_future", n_future)
    n_past = check_positive_int("n_past", n_past)
    padded = np.concatenate([
        np.zeros(n_past - 1), x, np.zeros(n_future)
    ])
    return padded, n_past - 1


def tap_window(padded, offset, t, n_future, n_past):
    """Window aligned with the tap vector: index 0 ↔ ``x(t + n_future)``.

    ``y(t) = taps · window`` with taps stored future-first, because
    ``taps[i] ↔ k = i - n_future`` multiplies ``x(t - k) = x(t + n_future - i)``.
    """
    start = t + offset - (n_past - 1)
    stop = t + offset + n_future + 1
    return padded[start:stop][::-1]


def mse_curve(error, window=256):
    """Sliding mean-square error (the convergence plots' y-axis)."""
    error = np.asarray(error, dtype=np.float64)
    window = min(max(int(window), 1), max(error.size, 1))
    squared = np.square(error)
    kernel = np.full(window, 1.0 / window)
    return np.convolve(squared, kernel, mode="same")


def guard_divergence(error_sample, context):
    """Raise :class:`ConvergenceError` when adaptation blows up."""
    if not np.isfinite(error_sample) or abs(error_sample) > DIVERGENCE_LIMIT:
        raise ConvergenceError(
            f"{context}: error sample {error_sample!r} exceeds divergence "
            "limit — reduce the step size mu"
        )


def effective_step(mu, window, normalized, epsilon=1e-8):
    """Step size, optionally normalized by instantaneous window power."""
    mu = check_positive("mu", mu)
    check_non_negative("epsilon", epsilon)
    if not normalized:
        return mu
    power = float(np.dot(window, window))
    return mu / (power + epsilon)


def _metric_labels(engine, backend):
    labels = {"engine": engine}
    if backend is not None:
        labels["backend"] = backend
    return labels


def record_run_metrics(engine, errors, desired, wall_s, backend=None):
    """Record one batch adaptation run in the obs metrics registry.

    Call **only when** :func:`repro.obs.enabled` — computing the
    misadjustment costs two reductions the disabled path must not pay.

    Emits, labeled ``engine=<name>`` (plus ``backend=<name>`` when a
    kernel backend is given):

    * ``adaptive.samples`` (counter) — samples processed;
    * ``adaptive.run_s`` (histogram) — wall time of the run;
    * ``adaptive.misadjustment`` (gauge) — trailing-quarter error power
      over desired/disturbance power (< 1 once adaptation is winning,
      → 0 as it converges).
    """
    registry = obs.get_registry()
    labels = _metric_labels(engine, backend)
    registry.counter("adaptive.samples", **labels).inc(errors.size)
    registry.histogram("adaptive.run_s", **labels).observe(wall_s)
    tail = errors[-max(errors.size // 4, 1):]
    reference_power = float(np.mean(np.square(desired)))
    if reference_power > 0.0:
        registry.gauge("adaptive.misadjustment", **labels).set(
            float(np.mean(np.square(tail))) / reference_power
        )


def record_block_metrics(engine, wall_s, n_samples, backend=None):
    """Record one streaming/block update in the obs metrics registry.

    The shared tail of every block-processing path (both branches of
    ``StreamingLanc.process``, ``BlockLancFilter``): one observation in
    the ``adaptive.block_update_s`` latency histogram — what the
    timing-budget report compares against the real-time deadline — and
    the processed-sample counter.  Labeled ``engine=<name>`` plus
    ``backend=<name>`` when a kernel backend is given.  Call **only
    when** :func:`repro.obs.enabled`.
    """
    registry = obs.get_registry()
    labels = _metric_labels(engine, backend)
    registry.histogram("adaptive.block_update_s", **labels).observe(wall_s)
    registry.counter("adaptive.samples", **labels).inc(n_samples)
