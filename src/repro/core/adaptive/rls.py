"""Recursive least squares — the fast-converging engine of §6.

Paper §6 (head mobility): convergence lag "has been alleviated by
bringing enhanced filtering methods known to converge faster."  RLS is
the canonical such method: it converges in ~2M samples where LMS needs
tens of M, at O(M²) cost per sample — affordable for the moderate tap
counts of tracking problems, not for the 500-tap cancellation filter
(which is why headphone-class DSPs run (N)LMS and why this library keeps
NLMS as the LANC engine).

The implementation is the standard exponentially-weighted RLS with
inverse-correlation recursion, plus the same ``identify_system``-style
convenience used in tests and the convergence ablation.
"""

from __future__ import annotations

import time

import numpy as np

from ... import obs
from ...utils.validation import (
    check_in_range,
    check_positive,
    check_positive_int,
    check_same_length,
    check_waveform,
)
from . import kernels
from .base import (
    AdaptationResult,
    guard_divergence,
    mse_curve,
    record_run_metrics,
)

__all__ = ["RlsFilter"]


class RlsFilter:
    """Exponentially-weighted recursive least squares (causal).

    Parameters
    ----------
    n_taps:
        Filter length ``M`` (per-sample cost is O(M²): keep moderate).
    forgetting:
        λ ∈ (0, 1]; 1 = infinite memory, ~0.99–0.9995 for tracking.
    delta:
        Initial inverse-correlation scale (``P(0) = I/delta``); small
        values start aggressive, large values start cautious.
    kernel_backend:
        Kernel backend for :meth:`run` (``None`` = env var / default).
    """

    def __init__(self, n_taps, forgetting=0.999, delta=1e-2,
                 kernel_backend=None):
        self.n_taps = check_positive_int("n_taps", n_taps)
        self.forgetting = check_in_range("forgetting", forgetting, 0.5, 1.0)
        self.delta = check_positive("delta", delta)
        if kernel_backend is not None:
            kernels.resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        self.taps = np.zeros(self.n_taps)
        self._window = np.zeros(self.n_taps)   # newest first
        self._P = np.eye(self.n_taps) / self.delta

    def reset(self):
        """Restore the power-up state."""
        self.taps[:] = 0.0
        self._window[:] = 0.0
        self._P = np.eye(self.n_taps) / self.delta

    def step(self, x_sample, d_sample):
        """One predict-then-update iteration.

        Returns
        -------
        (prediction, error)
        """
        self._window[1:] = self._window[:-1]
        self._window[0] = x_sample
        u = self._window
        prediction = float(np.dot(self.taps, u))
        error = float(d_sample) - prediction
        guard_divergence(error, "RlsFilter")

        Pu = self._P @ u
        denom = self.forgetting + float(np.dot(u, Pu))
        gain = Pu / denom
        self.taps += gain * error
        # Joseph-free rank-1 downdate; re-symmetrize to fight drift.
        self._P = (self._P - np.outer(gain, Pu)) / self.forgetting
        self._P = 0.5 * (self._P + self._P.T)
        return prediction, error

    def run(self, x, d):
        """Adapt over whole waveforms (same contract as LmsFilter.run)."""
        x = check_waveform("x", x)
        d = check_waveform("d", d)
        check_same_length("x", x, "d", d)
        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None
        backend = kernels.resolve_backend_name(self.kernel_backend)
        predictions, errors = kernels.rls_run(
            x, d, self.taps, self._window, self._P, self.forgetting,
            backend=backend, context="RlsFilter",
        )
        if enabled:
            record_run_metrics("rlsfilter", errors, d,
                               time.perf_counter() - t_start,
                               backend=backend)
        return AdaptationResult(
            error=errors,
            output=predictions,
            taps=self.taps.copy(),
            mse_trajectory=mse_curve(errors),
        )

    def convergence_samples(self, x, d, threshold_db=-20.0):
        """First sample index where the windowed MSE stays below
        ``threshold_db`` relative to the disturbance power.

        Returns ``None`` if never reached — the comparison metric of the
        convergence ablation.
        """
        d = check_waveform("d", d)
        result = self.run(x, d)
        target = np.mean(d ** 2) * 10.0 ** (threshold_db / 10.0)
        below = result.mse_trajectory < target
        if not below.any():
            return None
        # First index from which it stays below for good.
        last_above = np.flatnonzero(~below)
        if last_above.size == 0:
            return 0
        idx = int(last_above[-1]) + 1
        return idx if idx < d.size else None
