"""Affine projection adaptation (APA) — fast convergence on colored input.

NLMS whitens nothing: on strongly colored input (speech!) its modes
converge at rates spread by the input's eigenvalue spread, so the slow
modes dominate.  RLS fixes that at O(M²).  The affine projection
algorithm is the classic middle ground: it projects the update onto the
span of the last ``order`` input vectors, cancelling the coloration up
to that order, at O(M·order + order³) per sample.

With ``order = 1`` APA *is* NLMS; small orders (2–8) recover most of the
RLS convergence advantage on speech-like inputs — relevant to the
paper's §6 remark about faster-converging methods for tracking.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import linalg

from ... import obs
from ...errors import ConfigurationError
from ...utils.validation import (
    check_positive,
    check_positive_int,
    check_same_length,
    check_waveform,
)
from . import kernels
from .base import (
    AdaptationResult,
    guard_divergence,
    mse_curve,
    record_run_metrics,
)

__all__ = ["ApaFilter"]


class ApaFilter:
    """Causal affine-projection adaptive filter.

    Parameters
    ----------
    n_taps:
        Filter length ``M``.
    order:
        Projection order ``P`` (1 = NLMS).
    mu:
        Relative step, stable in (0, 2) like NLMS.
    epsilon:
        Regularizer for the P×P Gram inverse.
    kernel_backend:
        Kernel backend for :meth:`run` (``None`` = env var / default).
    """

    def __init__(self, n_taps, order=4, mu=0.5, epsilon=1e-6,
                 kernel_backend=None):
        self.n_taps = check_positive_int("n_taps", n_taps)
        self.order = check_positive_int("order", order)
        if self.order > self.n_taps:
            raise ConfigurationError("order cannot exceed n_taps")
        self.mu = check_positive("mu", mu)
        self.epsilon = check_positive("epsilon", epsilon)
        if kernel_backend is not None:
            kernels.resolve_backend_name(kernel_backend)
        self.kernel_backend = kernel_backend
        self.taps = np.zeros(self.n_taps)
        # Ring of the last `order` input windows (rows, newest first).
        self._U = np.zeros((self.order, self.n_taps))
        self._d = np.zeros(self.order)
        self._window = np.zeros(self.n_taps)

    def reset(self):
        """Restore power-up state."""
        self.taps[:] = 0.0
        self._U[:] = 0.0
        self._d[:] = 0.0
        self._window[:] = 0.0

    def step(self, x_sample, d_sample):
        """One predict-then-project iteration; returns (prediction, error)."""
        self._window[1:] = self._window[:-1]
        self._window[0] = x_sample
        self._U[1:] = self._U[:-1]
        self._U[0] = self._window
        self._d[1:] = self._d[:-1]
        self._d[0] = d_sample

        prediction = float(np.dot(self.taps, self._window))
        error = float(d_sample) - prediction
        guard_divergence(error, "ApaFilter")

        # Error vector over the projection window.
        e_vec = self._d - self._U @ self.taps
        gram = self._U @ self._U.T + self.epsilon * np.eye(self.order)
        try:
            solved = linalg.solve(gram, e_vec, assume_a="pos")
        except linalg.LinAlgError:   # pragma: no cover - eps prevents this
            solved = linalg.lstsq(gram, e_vec)[0]
        self.taps += self.mu * (self._U.T @ solved)
        return prediction, error

    def run(self, x, d):
        """Adapt over whole waveforms (LmsFilter-compatible contract)."""
        x = check_waveform("x", x)
        d = check_waveform("d", d)
        check_same_length("x", x, "d", d)
        enabled = obs.enabled()
        t_start = time.perf_counter() if enabled else None
        backend = kernels.resolve_backend_name(self.kernel_backend)
        predictions, errors = kernels.apa_run(
            x, d, self.taps, self._window, self._U, self._d, self.mu,
            self.epsilon, backend=backend, context="ApaFilter",
        )
        if enabled:
            record_run_metrics("apafilter", errors, d,
                               time.perf_counter() - t_start,
                               backend=backend)
        return AdaptationResult(
            error=errors,
            output=predictions,
            taps=self.taps.copy(),
            mse_trajectory=mse_curve(errors),
        )
