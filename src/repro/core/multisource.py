"""Multi-source scenes: several noise sources, several relays.

Builds the signals for the paper's §6 extension experiment: each noise
source gets a relay pasted near it; each relay's forwarded waveform is
aligned to the error-mic time base using *its own* acoustic lead; and
the multi-reference filter (:class:`MultiRefLancFilter`) cancels the
mixture.  The single-reference baseline for comparison uses only the
best relay.

The key physical point (which the experiment demonstrates): with one
reference, the second source is *noise in the reference* — it arrives at
the relay through a different channel than at the ear, so no single
filter maps the mixture correctly, and cancellation plateaus.  A
reference per source restores identifiability.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..acoustics.channels import AcousticChannel
from ..acoustics.rir import room_impulse_response
from ..errors import ConfigurationError, LookaheadError
from ..hardware.dsp_board import tms320c6713
from ..utils.validation import check_waveform
from .secondary_path import estimate_secondary_path

__all__ = ["MultiSourceScene", "build_multisource_scene"]


@dataclasses.dataclass
class MultiSourceScene:
    """Prepared signals for one multi-source experiment run.

    Attributes
    ----------
    references:
        Per-relay aligned reference waveforms (list).
    disturbance:
        Mixture at the error microphone.
    n_futures:
        Usable anti-causal taps per relay.
    secondary_true / secondary_estimate:
        Physical and probed ``h_se``.
    sample_rate:
        Hz.
    per_source:
        ``(source_point, relay_point, lead_samples)`` per branch, for
        reports.
    """

    references: list
    disturbance: np.ndarray
    n_futures: list
    secondary_true: np.ndarray
    secondary_estimate: np.ndarray
    sample_rate: float
    per_source: list


def build_multisource_scene(scenario, sources, waveforms, dsp=None,
                            probe_noise_rms=0.002, seed=0,
                            max_n_future=64):
    """Propagate several sources through the room; align per-relay.

    Parameters
    ----------
    scenario:
        A :class:`repro.core.Scenario` whose ``relays`` tuple has one
        relay per source (relay *i* is assumed pasted near source *i*).
    sources:
        Sequence of :class:`repro.acoustics.Point` noise-source
        positions (same length as ``scenario.relays``).
    waveforms:
        Per-source waveforms (equal lengths).
    dsp:
        Ear-device latency budget (default: the paper's board).
    """
    if len(sources) != len(scenario.relays):
        raise ConfigurationError(
            f"need one relay per source: {len(sources)} sources, "
            f"{len(scenario.relays)} relays"
        )
    if len(waveforms) != len(sources):
        raise ConfigurationError("need one waveform per source")
    waveforms = [check_waveform(f"waveforms[{i}]", w)
                 for i, w in enumerate(waveforms)]
    lengths = {w.size for w in waveforms}
    if len(lengths) != 1:
        raise ConfigurationError("all source waveforms must share a length")

    dsp = dsp or tms320c6713()
    fs = scenario.sample_rate
    pipeline_samples = dsp.total_latency_s * fs

    T = waveforms[0].size
    disturbance = np.zeros(T)
    references = []
    n_futures = []
    per_source = []

    # h_se once (speaker and error mic don't move).
    h_se_ir = room_impulse_response(
        scenario.room, scenario.speaker_position, scenario.client, fs,
        settings=scenario.rir_settings,
    )
    estimate = estimate_secondary_path(
        h_se_ir, n_taps=min(h_se_ir.size, 128),
        probe_duration_s=1.0, sample_rate=fs,
        ambient_noise_rms=probe_noise_rms, seed=seed,
    )

    for i, (source, waveform) in enumerate(zip(sources, waveforms)):
        scenario.room.require_inside(f"sources[{i}]", source)
        relay = scenario.relays[i]
        h_ne = AcousticChannel(room_impulse_response(
            scenario.room, source, scenario.client, fs,
            settings=scenario.rir_settings), name=f"h_ne[{i}]")
        disturbance += h_ne.apply(waveform)

        # Every relay hears *every* source — that is the whole point.
        capture = np.zeros(T)
        for j, (other_source, other_wave) in enumerate(zip(sources,
                                                           waveforms)):
            h_nr = room_impulse_response(
                scenario.room, other_source, relay, fs,
                settings=scenario.rir_settings)
            capture += AcousticChannel(h_nr, name=f"h_nr[{i}][{j}]") \
                .apply(other_wave)

        # Align this relay's stream on its *own* source's direct path.
        de = source.distance_to(scenario.client)
        dr = source.distance_to(relay)
        lead = int(np.floor(
            (de - dr) / scenario.rir_settings.speed_of_sound * fs))
        if lead <= pipeline_samples:
            raise LookaheadError(
                f"relay {i} offers no usable lookahead for source {i} "
                f"(lead {lead} samples, pipeline "
                f"{pipeline_samples:.1f})"
            )
        reference = np.zeros(T)
        reference[lead:] = capture[: T - lead]
        references.append(reference)
        n_futures.append(
            min(int(np.floor(lead - pipeline_samples)), max_n_future))
        per_source.append((source, relay, lead))

    return MultiSourceScene(
        references=references,
        disturbance=disturbance,
        n_futures=n_futures,
        secondary_true=h_se_ir,
        secondary_estimate=estimate.impulse_response,
        sample_rate=fs,
        per_source=per_source,
    )
