"""Lookahead accounting — Eq. 3 and Eq. 4 of the paper.

Two numbers rule the system:

* the **acoustic lead**: how much earlier the relay hears the wavefront
  than the ear, ``(d_e − d_r) / v`` (Eq. 4);
* the **pipeline latency**: ADC + DSP + DAC + speaker (Eq. 3's right
  side), plus any relay chain group delay.

Their difference, in samples, is the number of anti-causal taps ``N``
that LANC can physically realize.  The Figure 16 experiment shrinks the
lead artificially with a *delayed line buffer*; :class:`LookaheadBudget`
models that with ``injected_delay_s``.
"""

from __future__ import annotations

import dataclasses

from ..acoustics.constants import SPEED_OF_SOUND
from ..errors import ConfigurationError
from ..utils.validation import check_non_negative, check_positive

__all__ = ["lookahead_seconds", "lookahead_samples", "LookaheadBudget"]


def lookahead_seconds(de_m, dr_m, speed=SPEED_OF_SOUND):
    """Paper Eq. 4: ``(d_e − d_r) / v``.

    Positive when the relay is closer to the source than the ear; 1 m of
    advantage ≈ 3 ms.  May legitimately be negative (relay behind the
    user) — that is what relay selection detects and rejects.
    """
    de_m = check_non_negative("de_m", de_m)
    dr_m = check_non_negative("dr_m", dr_m)
    speed = check_positive("speed", speed)
    return (de_m - dr_m) / speed


def lookahead_samples(de_m, dr_m, sample_rate, speed=SPEED_OF_SOUND):
    """Eq. 4 in whole samples (floor — partial samples don't buy a tap)."""
    sample_rate = check_positive("sample_rate", sample_rate)
    import math

    return math.floor(lookahead_seconds(de_m, dr_m, speed) * sample_rate)


@dataclasses.dataclass(frozen=True)
class LookaheadBudget:
    """Full lookahead ledger for one relay↔ear configuration.

    Parameters
    ----------
    acoustic_lead_s:
        The Eq. 4 lead (possibly negative).
    pipeline_latency_s:
        The Eq. 3 sum for the ear device.
    relay_latency_s:
        Fixed group delay of the relay chain (analog: ~0.1 ms).
    injected_delay_s:
        Artificial delay inserted in the reference path (the Figure 16
        "delayed line buffer"); shrinks the usable lookahead.
    """

    acoustic_lead_s: float
    pipeline_latency_s: float = 0.0
    relay_latency_s: float = 0.0
    injected_delay_s: float = 0.0

    def __post_init__(self):
        if self.pipeline_latency_s < 0 or self.relay_latency_s < 0 \
                or self.injected_delay_s < 0:
            raise ConfigurationError(
                "latency terms must be >= 0 "
                f"(got pipeline={self.pipeline_latency_s}, "
                f"relay={self.relay_latency_s}, "
                f"injected={self.injected_delay_s})"
            )

    @property
    def usable_lookahead_s(self):
        """Lookahead left after every latency is paid."""
        return (self.acoustic_lead_s - self.pipeline_latency_s
                - self.relay_latency_s - self.injected_delay_s)

    def usable_future_taps(self, sample_rate):
        """``N`` — anti-causal taps LANC may use (≥ 0)."""
        sample_rate = check_positive("sample_rate", sample_rate)
        import math

        return max(math.floor(self.usable_lookahead_s * sample_rate), 0)

    @property
    def meets_deadline(self):
        """Eq. 3: lookahead covers the pipeline (timing bottleneck gone)."""
        return self.usable_lookahead_s >= 0.0

    @property
    def playback_lag_s(self):
        """Residual anti-noise lateness when the deadline is missed.

        Zero for MUTE (Figure 5b); the phase-error source for
        conventional headphones (Figure 5a).
        """
        return max(-self.usable_lookahead_s, 0.0)

    def with_injected_delay(self, injected_delay_s):
        """A copy with a different Figure 16 injected delay."""
        return dataclasses.replace(self, injected_delay_s=injected_delay_s)
