"""Secondary-path (``h_se``) estimation.

The channel from the anti-noise speaker to the error microphone *can* be
measured directly — the system controls the speaker, so it plays a known
probe and identifies the response (the paper: "h_se^{-1} can be
estimated by sending a known preamble from the anti-noise speaker and
measuring the response at the error microphone").  Estimation quality
degrades gracefully with ambient noise present during the probe; the
returned report carries the residual so callers can decide to re-probe.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import ChannelError
from ..utils.validation import (
    check_impulse_response,
    check_non_negative,
    check_positive,
    check_positive_int,
)
from .adaptive.lms import LmsFilter

__all__ = ["SecondaryPathEstimate", "estimate_secondary_path"]


@dataclasses.dataclass(frozen=True)
class SecondaryPathEstimate:
    """Result of a probe measurement.

    Attributes
    ----------
    impulse_response:
        The estimated ``ĥ_se``.
    residual_rms:
        RMS of the final prediction error (0 = perfect fit).
    probe_rms:
        Probe level used, for SNR bookkeeping.
    """

    impulse_response: np.ndarray
    residual_rms: float
    probe_rms: float

    @property
    def quality_db(self):
        """Fit quality: probe-to-residual ratio in dB (higher = better)."""
        if self.residual_rms <= 0:
            return float("inf")
        return 20.0 * np.log10(self.probe_rms / self.residual_rms)


def estimate_secondary_path(true_channel, n_taps, probe_duration_s=1.0,
                            sample_rate=8000.0, ambient_noise_rms=0.0,
                            probe_rms=1.0, mu=0.8, n_passes=3, seed=0):
    """Identify ``h_se`` by playing a white-noise probe through it.

    Parameters
    ----------
    true_channel:
        The physical speaker→error-mic impulse response being measured
        (in a deployment this is the unknown; in the simulation we own
        it).
    n_taps:
        Length of the estimate; should cover the channel's support.
    probe_duration_s / probe_rms:
        Probe length and level.
    ambient_noise_rms:
        Ambient noise at the error mic during the probe (uncorrelated
        with the probe), which limits estimate quality.
    mu, n_passes:
        NLMS step and number of passes over the probe recording.

    Returns
    -------
    SecondaryPathEstimate
    """
    true_channel = check_impulse_response("true_channel", true_channel)
    n_taps = check_positive_int("n_taps", n_taps)
    probe_duration_s = check_positive("probe_duration_s", probe_duration_s)
    sample_rate = check_positive("sample_rate", sample_rate)
    ambient_noise_rms = check_non_negative("ambient_noise_rms",
                                           ambient_noise_rms)
    probe_rms = check_positive("probe_rms", probe_rms)

    n_samples = int(probe_duration_s * sample_rate)
    if n_samples < n_taps * 4:
        raise ChannelError(
            f"probe of {n_samples} samples too short to identify "
            f"{n_taps} taps; use at least {n_taps * 4} samples"
        )
    rng = np.random.default_rng(seed)
    probe = probe_rms * rng.standard_normal(n_samples)
    measured = np.convolve(probe, true_channel)[:n_samples]
    if ambient_noise_rms > 0.0:
        measured = measured + ambient_noise_rms * rng.standard_normal(
            n_samples
        )

    lms = LmsFilter(n_taps=n_taps, mu=mu, normalized=True)
    result = None
    for __ in range(int(n_passes)):
        result = lms.run(probe, measured)
    return SecondaryPathEstimate(
        impulse_response=result.taps,
        residual_rms=result.converged_error(),
        probe_rms=probe_rms,
    )
