"""Exception hierarchy for the MUTE reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without also catching unrelated bugs::

    try:
        system.run(noise)
    except repro.ReproError as exc:
        log.error("simulation failed: %s", exc)
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "UnknownParameterError",
    "SignalError",
    "ChannelError",
    "ConvergenceError",
    "LookaheadError",
    "RelaySelectionError",
    "ServingOverloadError",
    "CheckpointError",
    "InjectedCrashError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter or combination of parameters is invalid.

    Raised eagerly at construction time so misconfiguration is caught
    before a long simulation starts.
    """


class UnknownParameterError(ConfigurationError):
    """An override names a parameter the target does not accept.

    Carries the offending names so callers (the CLI, the executor) can
    print exactly what was wrong without parsing the message.

    Attributes
    ----------
    unknown:
        Sorted tuple of the unrecognized parameter names.
    valid:
        Tuple of the names that *are* accepted, in signature order.
    """

    def __init__(self, message, unknown=(), valid=()):
        super().__init__(message)
        self.unknown = tuple(unknown)
        self.valid = tuple(valid)


class SignalError(ReproError, ValueError):
    """A signal array has the wrong shape, dtype, or content."""


class ChannelError(ReproError, ValueError):
    """An acoustic or RF channel is invalid (e.g. empty impulse response)."""


class ConvergenceError(ReproError, RuntimeError):
    """An adaptive filter diverged (error grew without bound).

    LMS-family filters diverge when the step size exceeds the stability
    bound for the input power; the simulator raises this instead of
    silently returning NaNs.
    """


class LookaheadError(ReproError, ValueError):
    """A lookahead buffer was asked for samples it cannot provide."""


class RelaySelectionError(ReproError, RuntimeError):
    """Relay selection could not produce a valid decision."""


class ServingOverloadError(ReproError, RuntimeError):
    """The session server refused an admission: capacity is exhausted.

    Raised by :meth:`repro.serving.SessionManager.submit` under the
    ``"reject"`` shed policy when both the active set and the pending
    queue are full — the serving layer's explicit backpressure signal.
    """


class CheckpointError(ReproError, RuntimeError):
    """A session checkpoint could not be written, read, or applied.

    Note that a *corrupt* stored checkpoint never raises on the read
    path — :meth:`repro.serving.CheckpointStore.latest` skips damaged
    snapshots and falls back to the newest intact one (or a cold
    restart).  This error flags caller mistakes: checkpointing a
    session whose geometry does not match the payload, or restoring
    into the wrong workload.
    """


class InjectedCrashError(ReproError, RuntimeError):
    """A deliberate crash injected by the chaos harness.

    Raised by :class:`repro.chaos.SessionChaosInjector` at a scheduled
    block so the serving supervisor's catch/restore path is exercised
    by a *typed*, attributable failure.  A supervised server treats it
    exactly like any other per-session exception; an unsupervised
    server lets it propagate (chaos without supervision is a
    configuration mistake worth failing loudly on).
    """
