"""The global fast-path switch.

Every optimized hot path this package grew in the perf overhaul — the
cached-FFT FIR engine (:mod:`repro.utils.fastconv`), the cached
polyphase resampler (:func:`repro.wireless.fm.resample`), the in-place
modulator/demodulator arithmetic — checks :func:`enabled` before taking
its shortcut.  With the switch off, every call site runs the original
(pre-overhaul) formulation, which is what ``benchmarks/bench_pipeline.py``
uses as the honest "before" leg of its end-to-end speedup claim.

Resolution order: an explicit :func:`set_enabled` / :func:`scope` wins;
otherwise the ``REPRO_FASTPATH`` environment variable (``0`` / ``off`` /
``false`` / ``no`` disable); otherwise **on** — the fast paths are the
default, their ≤ 1e-10 contracts are property-tested, and the slow
paths exist as references, not as the product.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["ENV_VAR", "enabled", "set_enabled", "scope"]

#: Environment variable consulted when no explicit override is set.
ENV_VAR = "REPRO_FASTPATH"

_FALSY = ("0", "off", "false", "no")

#: Tri-state override: None = defer to the environment.
_override = None


def enabled():
    """Are the fast paths on?  (override → ``REPRO_FASTPATH`` → yes)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def set_enabled(flag):
    """Force the fast paths on/off process-wide; ``None`` re-arms the env."""
    global _override
    _override = None if flag is None else bool(flag)


@contextmanager
def scope(flag):
    """Temporarily force the fast paths on/off (restores on exit)."""
    global _override
    previous = _override
    _override = bool(flag)
    try:
        yield
    finally:
        _override = previous
