"""Spectral estimation utilities.

The paper's evaluation figures all plot *cancellation versus frequency*:
the ratio of residual power spectral density with the system on versus
off.  This module provides the PSD estimator, band-energy summaries used
by the sound-profile classifier, and the A-weighting curve used by the
human-rating model.
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import SignalError
from .units import power_to_db
from .validation import check_positive, check_positive_int, check_waveform

__all__ = [
    "welch_psd",
    "band_energies",
    "band_energy_signature",
    "spectrogram",
    "a_weighting_db",
    "octave_band_edges",
    "cancellation_spectrum_db",
    "smooth_spectrum_db",
]


def welch_psd(signal, sample_rate, nperseg=512):
    """Welch power spectral density estimate.

    Returns ``(freqs, psd)`` with ``freqs`` in Hz.  A thin wrapper over
    :func:`scipy.signal.welch` with the library's validation applied, and
    ``nperseg`` clamped to the signal length so short signals still work.
    """
    signal = check_waveform("signal", signal, min_length=8)
    sample_rate = check_positive("sample_rate", sample_rate)
    nperseg = min(check_positive_int("nperseg", nperseg), signal.size)
    freqs, psd = sps.welch(signal, fs=sample_rate, nperseg=nperseg)
    return freqs, psd


def band_energies(signal, sample_rate, edges):
    """Total PSD energy inside each band delimited by ``edges`` (Hz).

    ``edges`` must be strictly increasing; ``len(edges) - 1`` values are
    returned.
    """
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2 or np.any(np.diff(edges) <= 0):
        raise SignalError("edges must be a strictly increasing 1-D array")
    freqs, psd = welch_psd(signal, sample_rate)
    out = np.empty(edges.size - 1, dtype=float)
    for i in range(edges.size - 1):
        mask = (freqs >= edges[i]) & (freqs < edges[i + 1])
        out[i] = float(np.sum(psd[mask]))
    return out


def band_energy_signature(signal, sample_rate, n_bands=16, f_max=None):
    """Normalized band-energy vector — the paper's "sound profile" signature.

    The paper defines a sound profile as "a statistical signature for the
    sound source — a simple example is the average energy distribution
    across frequencies".  This returns exactly that: energies in
    ``n_bands`` equal-width bands up to ``f_max`` (default Nyquist),
    normalized to sum to 1 so the signature is level-invariant.
    """
    sample_rate = check_positive("sample_rate", sample_rate)
    n_bands = check_positive_int("n_bands", n_bands)
    if f_max is None:
        f_max = sample_rate / 2.0
    f_max = check_positive("f_max", f_max)
    edges = np.linspace(0.0, f_max, n_bands + 1)
    energies = band_energies(signal, sample_rate, edges)
    total = float(np.sum(energies))
    if total <= 0.0:
        # Silence: return a uniform signature so distance math stays finite.
        return np.full(n_bands, 1.0 / n_bands)
    return energies / total


def spectrogram(signal, sample_rate, nperseg=256, overlap=0.5):
    """Magnitude spectrogram ``(freqs, times, magnitude)``."""
    signal = check_waveform("signal", signal, min_length=8)
    sample_rate = check_positive("sample_rate", sample_rate)
    nperseg = min(check_positive_int("nperseg", nperseg), signal.size)
    noverlap = int(nperseg * overlap)
    freqs, times, sxx = sps.spectrogram(
        signal, fs=sample_rate, nperseg=nperseg, noverlap=noverlap
    )
    return freqs, times, sxx


def a_weighting_db(freqs):
    """IEC 61672 A-weighting in dB for frequencies in Hz.

    Used by the human-rating model: perceived loudness of residual noise
    weights mid frequencies far more than low rumble.
    """
    f = np.maximum(np.asarray(freqs, dtype=float), 1e-3)
    f2 = f ** 2
    ra = (12194.0 ** 2 * f2 ** 2) / (
        (f2 + 20.6 ** 2)
        * np.sqrt((f2 + 107.7 ** 2) * (f2 + 737.9 ** 2))
        * (f2 + 12194.0 ** 2)
    )
    return 20.0 * np.log10(np.maximum(ra, 1e-10)) + 2.0


def octave_band_edges(f_low=62.5, f_high=4000.0):
    """Octave-band edges from ``f_low`` doubling up to at least ``f_high``."""
    f_low = check_positive("f_low", f_low)
    f_high = check_positive("f_high", f_high)
    if f_high <= f_low:
        raise SignalError("f_high must exceed f_low")
    edges = [f_low]
    while edges[-1] < f_high:
        edges.append(edges[-1] * 2.0)
    return np.asarray(edges)


def cancellation_spectrum_db(before, after, sample_rate, nperseg=512,
                             min_signal_db=None):
    """Per-frequency cancellation in dB: PSD(after) / PSD(before).

    This is the quantity plotted in the paper's Figures 12, 14, 16, 17.
    Negative values indicate cancellation.

    ``min_signal_db`` masks bins that carry (almost) no noise to cancel:
    bins whose ``before`` PSD sits more than ``|min_signal_db|`` dB below
    the spectral peak become NaN instead of a meaningless 0 dB — the way
    a bench measurement only reads cancellation where the analyzer shows
    signal.  ``None`` keeps every bin (fine for wide-band noise).
    """
    f_b, psd_b = welch_psd(before, sample_rate, nperseg=nperseg)
    f_a, psd_a = welch_psd(after, sample_rate, nperseg=nperseg)
    if f_b.shape != f_a.shape:
        raise SignalError("before/after must produce matching PSD grids")
    peak = np.max(psd_b)
    floor = peak * 1e-12 if peak > 0 else 1e-20
    ratio = np.where(psd_b > floor, psd_a / np.maximum(psd_b, floor), 1.0)
    spectrum = power_to_db(ratio)
    if min_signal_db is not None and peak > 0:
        mask = psd_b < peak * 10.0 ** (min_signal_db / 10.0)
        spectrum = np.where(mask, np.nan, spectrum)
    return f_b, spectrum


def smooth_spectrum_db(values_db, window=5):
    """Moving-average smoothing for plotted dB curves (odd ``window``).

    NaN bins (masked "no signal" frequencies) stay NaN and do not poison
    their neighbors.
    """
    values_db = np.asarray(values_db, dtype=float)
    window = check_positive_int("window", window)
    if window % 2 == 0:
        window += 1
    if window == 1 or values_db.size < window:
        return values_db.copy()
    kernel = np.full(window, 1.0 / window)
    pad = window // 2
    nan_mask = np.isnan(values_db)
    filled = np.where(nan_mask, 0.0, values_db)
    weights = np.where(nan_mask, 0.0, 1.0)
    padded = np.pad(filled, pad, mode="edge")
    padded_w = np.pad(weights, pad, mode="edge")
    smoothed = np.convolve(padded, kernel, mode="valid")
    weight_sum = np.convolve(padded_w, kernel, mode="valid")
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(weight_sum > 0, smoothed / weight_sum, np.nan)
    out[nan_mask] = np.nan
    return out
