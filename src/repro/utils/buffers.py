"""Sample buffers used by the streaming DSP components.

Three buffer types cover every streaming need in the library:

* :class:`RingBuffer` — fixed-capacity FIFO of recent samples with O(1)
  push and O(n) snapshot; the workhorse behind tapped delay lines.
* :class:`DelayLine` — integer-sample delay (``y[t] = x[t - D]``), used to
  model wire/converter latency and the paper's "delayed line buffer" that
  artificially shrinks lookahead in the Figure 16 experiment.
* :class:`LookaheadBuffer` — the MUTE-specific structure: the wireless
  relay delivers reference samples *ahead* of the acoustic wavefront, so
  at acoustic time ``t`` the DSP can read reference samples up to
  ``t + lookahead``.
"""

from __future__ import annotations

import numpy as np

from ..errors import LookaheadError
from .validation import check_non_negative_int, check_positive_int

__all__ = ["RingBuffer", "DelayLine", "LookaheadBuffer"]


class RingBuffer:
    """Fixed-capacity buffer holding the most recent ``capacity`` samples.

    New samples are pushed one at a time; ``recent(k)`` returns the last
    ``k`` samples in chronological order.  Samples older than the capacity
    are discarded.  The buffer starts zero-filled, which matches how DSP
    delay lines power up.
    """

    def __init__(self, capacity):
        self.capacity = check_positive_int("capacity", capacity)
        self._data = np.zeros(self.capacity, dtype=np.float64)
        self._next = 0          # index where the next sample is written
        self._count = 0         # total samples ever pushed (saturates display only)

    def __len__(self):
        """Number of valid (pushed) samples currently held, capped at capacity."""
        return min(self._count, self.capacity)

    def push(self, sample):
        """Append one sample, evicting the oldest if full."""
        self._data[self._next] = sample
        self._next = (self._next + 1) % self.capacity
        self._count += 1

    def extend(self, samples):
        """Append many samples efficiently."""
        samples = np.asarray(samples, dtype=np.float64)
        n = samples.size
        if n == 0:
            return
        if n >= self.capacity:
            # Only the trailing `capacity` samples survive.
            self._data[:] = samples[-self.capacity:]
            self._next = 0
            self._count += n
            return
        first = min(n, self.capacity - self._next)
        self._data[self._next:self._next + first] = samples[:first]
        if first < n:
            self._data[:n - first] = samples[first:]
        self._next = (self._next + n) % self.capacity
        self._count += n

    def recent(self, k):
        """Return the latest ``k`` samples, oldest first.

        Positions never written return 0.0 (cold-start convention).
        """
        k = check_positive_int("k", k)
        if k > self.capacity:
            raise LookaheadError(
                f"requested {k} samples from a buffer of capacity {self.capacity}"
            )
        idx = (self._next - k) % self.capacity
        if idx + k <= self.capacity:
            return self._data[idx:idx + k].copy()
        head = self._data[idx:]
        tail = self._data[:k - (self.capacity - idx)]
        return np.concatenate([head, tail])

    def newest(self):
        """Return the most recently pushed sample (0.0 if never pushed)."""
        return float(self._data[(self._next - 1) % self.capacity])


class DelayLine:
    """Pure integer-sample delay: ``y[t] = x[t - delay]``.

    A zero delay passes samples through unchanged.  The line starts
    zero-filled, so the first ``delay`` outputs are 0.0.
    """

    def __init__(self, delay):
        self.delay = check_non_negative_int("delay", delay)
        self._buffer = np.zeros(max(self.delay, 1), dtype=np.float64)
        self._pos = 0

    def push(self, sample):
        """Push one input sample and return the delayed output sample."""
        if self.delay == 0:
            return float(sample)
        out = self._buffer[self._pos]
        self._buffer[self._pos] = sample
        self._pos = (self._pos + 1) % self.delay
        return float(out)

    def process(self, signal):
        """Delay a whole block, preserving state across calls."""
        signal = np.asarray(signal, dtype=np.float64)
        if self.delay == 0:
            return signal.copy()
        out = np.empty_like(signal)
        for i, sample in enumerate(signal):
            out[i] = self.push(sample)
        return out

    def reset(self):
        """Clear internal state back to the zero-filled power-up condition."""
        self._buffer[:] = 0.0
        self._pos = 0


class LookaheadBuffer:
    """Reference-signal buffer with future access.

    The buffer is fed from the wireless relay, whose samples arrive
    ``lookahead`` samples before the corresponding acoustic wavefront
    reaches the ear.  Indexing is expressed in *acoustic time*: after
    ``advance()`` has been called ``t+1`` times, ``read(k)`` returns the
    reference sample at acoustic time ``t - k``, where ``k`` may be as
    negative as ``-lookahead`` (future) and as positive as
    ``history - 1`` (past).

    Storage grows with the fed signal (float64, so minutes of 8 kHz audio
    cost a few MB); ``compact()`` drops samples older than the history
    window when long-running streams need bounded memory.

    Parameters
    ----------
    lookahead:
        How many future samples are accessible (``N`` in the paper's
        Algorithm 1).
    history:
        How many past samples (including the current one) are accessible
        (``L + 1`` for the causal taps).
    """

    def __init__(self, lookahead, history):
        self.lookahead = check_non_negative_int("lookahead", lookahead)
        self.history = check_positive_int("history", history)
        self._data = np.zeros(1024, dtype=np.float64)
        self._fed = 0        # number of samples delivered
        self._base = 0       # absolute time of _data[0]
        self._time = -1      # current acoustic time

    @property
    def time(self):
        """Current acoustic time index (−1 before the first advance)."""
        return self._time

    @property
    def available_future(self):
        """How many future samples are currently in hand."""
        return self._fed - 1 - self._time

    def _grow_to(self, n_local):
        if n_local <= self._data.size:
            return
        new_size = max(self._data.size * 2, n_local)
        grown = np.zeros(new_size, dtype=np.float64)
        grown[: self._data.size] = self._data
        self._data = grown

    def feed(self, sample):
        """Deliver one relay sample.

        The i-th sample ever fed corresponds to acoustic time ``i`` — the
        moment its wavefront reaches the error microphone; the radio link
        makes it *available* ``lookahead`` samples earlier.
        """
        local = self._fed - self._base
        self._grow_to(local + 1)
        self._data[local] = sample
        self._fed += 1

    def feed_block(self, samples):
        """Deliver a block of relay samples."""
        samples = np.asarray(samples, dtype=np.float64)
        local = self._fed - self._base
        self._grow_to(local + samples.size)
        self._data[local: local + samples.size] = samples
        self._fed += samples.size

    def advance(self):
        """Advance acoustic time by one sample.

        Raises
        ------
        LookaheadError
            If the relay has not yet delivered the sample that should now
            be ``lookahead`` samples in the future — i.e. the radio link
            stalled and the promised lookahead is unavailable.
        """
        if self._fed < (self._time + 1) + self.lookahead + 1:
            raise LookaheadError(
                "lookahead buffer underrun: relay has delivered "
                f"{self._fed} samples but acoustic time {self._time + 1} "
                f"requires {self._time + 2 + self.lookahead}"
            )
        self._time += 1

    def read(self, k):
        """Read the reference sample at acoustic time ``time - k``.

        ``k < 0`` reads the future (up to ``-lookahead``); ``k >= 0``
        reads the past (up to ``history - 1``).  Times before 0
        (pre power-up) read as 0.0.
        """
        if k < -self.lookahead or k >= self.history:
            raise LookaheadError(
                f"tap index {k} outside [-{self.lookahead}, {self.history - 1}]"
            )
        target = self._time - k
        if target < 0:
            return 0.0
        if target >= self._fed:
            raise LookaheadError(
                f"acoustic time {target} not yet delivered "
                f"(newest is {self._fed - 1})"
            )
        local = target - self._base
        if local < 0:
            raise LookaheadError(
                f"acoustic time {target} was compacted away"
            )
        return float(self._data[local])

    def window(self, n_future, n_past):
        """Tap-input vector for acoustic times ``[time-n_past+1, time+n_future]``.

        Returned oldest-first as a length ``n_past + n_future`` array —
        exactly the input vector for a filter with ``n_future`` non-causal
        and ``n_past`` causal taps.  Pre-power-up times read as 0.0.
        """
        if n_future > self.lookahead:
            raise LookaheadError(
                f"requested {n_future} future samples but lookahead is "
                f"{self.lookahead}"
            )
        if n_past > self.history:
            raise LookaheadError(
                f"requested {n_past} past samples but history is {self.history}"
            )
        newest_wanted = self._time + n_future
        if newest_wanted >= self._fed:
            raise LookaheadError(
                f"acoustic time {newest_wanted} not yet delivered "
                f"(newest is {self._fed - 1})"
            )
        oldest_wanted = self._time - n_past + 1
        total = n_past + n_future
        out = np.zeros(total, dtype=np.float64)
        start = max(oldest_wanted, 0)
        lo_local = start - self._base
        if lo_local < 0:
            raise LookaheadError("window extends into compacted region")
        hi_local = newest_wanted - self._base + 1
        out[total - (newest_wanted - start + 1):] = \
            self._data[lo_local:hi_local]
        return out

    def compact(self):
        """Drop samples older than the history window to bound memory."""
        keep_from = max(self._time - self.history + 1, 0)
        if keep_from <= self._base:
            return
        shift = keep_from - self._base
        kept = self._fed - keep_from
        self._data[:kept] = self._data[shift: shift + kept]
        self._base = keep_from
