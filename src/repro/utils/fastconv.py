"""Shared FIR engine: cached FFT plans per impulse response.

Before the perf overhaul, FIR application was scattered across an
ad-hoc trio — ``np.convolve`` (``acoustics/propagation.py``,
``core/system.py``, ``hardware/ear.py``), ``scipy.signal.fftconvolve``
(``acoustics/channels.py``, ``hardware/transducers.py``), and
``lfilter``-with-state for streaming blocks.  Every call re-transformed
the *same* impulse response; the acoustics chain applies one room IR to
every waveform of an experiment.

This module centralizes all of it:

* :func:`fir_apply` — one-shot convolution.  Short signals take a
  single cached-spectrum FFT product that is **bit-identical** to
  ``fftconvolve`` (same ``next_fast_len`` size, same rfft/irfft
  pipeline); long signals switch to **overlap-save** with a fixed
  per-IR block size, so one cached spectrum serves every signal length.
  Tiny kernels fall back to direct ``np.convolve`` (faster below the
  FFT break-even, and bit-identical to the historical path).
* :class:`StreamingFir` — stateful block convolution whose carry state
  is numerically the ``lfilter`` ``zi`` vector (the pending tail of the
  convolution), computed per block through :func:`fir_apply`.
* an LRU spectrum cache keyed by ``(ir bytes, nfft)`` — the "FFT plan
  per IR" the profiling harness showed the acoustics stage re-paying.

Contract: ``fir_apply(x, h)`` matches ``np.convolve(x, h)`` to
≤ 1e-10 absolute (hypothesis-tested in ``tests/test_fastconv.py``),
and with :mod:`repro.utils.fastpath` disabled it *is* the historical
``fftconvolve`` call.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy import fft as sp_fft
from scipy import signal as sps

from ..errors import ConfigurationError
from . import fastpath

__all__ = ["fir_apply", "StreamingFir", "cache_info", "clear_cache"]

#: Kernels at or below this length stay on direct ``np.convolve`` —
#: below the FFT break-even, and it keeps tiny secondary paths
#: bit-identical to the seed arithmetic.
DIRECT_TAP_LIMIT = 8

#: Spectrum-cache capacity (distinct ``(ir, nfft)`` pairs).
_CACHE_CAPACITY = 128

_cache = OrderedDict()      # (ir_bytes, nfft) -> cached rfft spectrum
_hits = 0
_misses = 0


def clear_cache():
    """Drop every cached spectrum (tests; memory pressure)."""
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


def cache_info():
    """``{size, capacity, hits, misses}`` of the spectrum cache."""
    return {"size": len(_cache), "capacity": _CACHE_CAPACITY,
            "hits": _hits, "misses": _misses}


def _spectrum(ir, nfft):
    """The cached ``rfft(ir, nfft)`` for this exact impulse response."""
    global _hits, _misses
    key = (ir.tobytes(), nfft)
    found = _cache.get(key)
    if found is not None:
        _hits += 1
        _cache.move_to_end(key)
        return found
    _misses += 1
    spectrum = sp_fft.rfft(ir, nfft)
    _cache[key] = spectrum
    if len(_cache) > _CACHE_CAPACITY:
        _cache.popitem(last=False)
    return spectrum


def _block_nfft(m):
    """Fixed overlap-save FFT size for an ``m``-tap kernel.

    ~8x the kernel keeps the per-output cost near the optimum while one
    cached spectrum serves every signal length the IR ever meets.
    """
    return sp_fft.next_fast_len(max(8 * m, 4096), True)


def _overlap_save(x, H, m, nfft, n_out):
    """Linear convolution via overlap-save against a cached spectrum."""
    L = nfft - m + 1
    # Leading m-1 zeros stand in for the pre-signal history; slices past
    # the end are implicitly zero-padded by rfft(..., nfft).
    xpad = np.zeros(m - 1 + x.size)
    xpad[m - 1:] = x
    out = np.empty(n_out)
    pos = 0
    while pos < n_out:
        seg = xpad[pos: pos + nfft]
        y = sp_fft.irfft(sp_fft.rfft(seg, nfft) * H, nfft)
        take = min(L, n_out - pos)
        out[pos: pos + take] = y[m - 1: m - 1 + take]
        pos += take
    return out


def fir_apply(signal, ir, mode="same"):
    """Convolve ``signal`` with FIR ``ir`` through the cached-FFT engine.

    Parameters
    ----------
    signal, ir:
        Real 1-D float arrays (the waveform and the impulse response).
    mode:
        ``"same"`` returns the first ``len(signal)`` samples (the
        library's usual ``np.convolve(x, h)[:n]`` truncation); ``"full"``
        returns all ``n + m - 1``.

    With :mod:`repro.utils.fastpath` disabled this is plain
    ``scipy.signal.fftconvolve`` — the pre-overhaul arithmetic.
    """
    if mode not in ("same", "full"):
        raise ConfigurationError(f"mode must be 'same' or 'full', not {mode!r}")
    signal = np.asarray(signal)
    ir = np.asarray(ir)
    if signal.ndim != 1 or ir.ndim != 1 or signal.size == 0 or ir.size == 0:
        raise ConfigurationError("fir_apply needs non-empty 1-D arrays")
    n, m = signal.size, ir.size
    n_out = n + m - 1

    if not fastpath.enabled():
        full = sps.fftconvolve(signal, ir)
        return full if mode == "full" else full[:n]
    if (m <= DIRECT_TAP_LIMIT or n < 2 * m
            or np.iscomplexobj(signal) or np.iscomplexobj(ir)):
        full = np.convolve(signal, ir)
        return full if mode == "full" else full[:n]

    block_nfft = _block_nfft(m)
    if n_out <= block_nfft:
        # Single transform at fftconvolve's own size: bit-identical to
        # the historical fftconvolve output, spectrum cached.
        nfft = sp_fft.next_fast_len(n_out, True)
        H = _spectrum(ir, nfft)
        full = sp_fft.irfft(sp_fft.rfft(signal, nfft) * H, nfft)[:n_out]
    else:
        H = _spectrum(ir, block_nfft)
        full = _overlap_save(signal, H, m, block_nfft, n_out)
    return full if mode == "full" else full[:n]


class StreamingFir:
    """Stateful block FIR: overlap-add through the cached-FFT engine.

    The carry vector is exactly the pending convolution tail — the same
    quantity ``scipy.signal.lfilter`` keeps as ``zi`` — so a
    :class:`StreamingFir` can share its state buffer with code that
    still updates it sample-by-sample (``AcousticChannel.step``).

    Parameters
    ----------
    ir:
        FIR coefficients.
    state:
        Optional external carry buffer of length ``>= len(ir) - 1``
        (shared ownership); a private zero buffer otherwise.
    """

    def __init__(self, ir, state=None):
        self.ir = np.asarray(ir, dtype=np.float64)
        if self.ir.ndim != 1 or self.ir.size == 0:
            raise ConfigurationError("ir must be a non-empty 1-D array")
        depth = max(self.ir.size - 1, 1)
        if state is None:
            state = np.zeros(depth)
        elif state.size < depth:
            raise ConfigurationError(
                f"state buffer needs >= {depth} slots, got {state.size}")
        self.state = state

    def reset(self):
        """Clear the carried tail."""
        self.state[:] = 0.0

    def process(self, block):
        """Convolve one block, carrying state across calls."""
        block = np.asarray(block)
        m = self.ir.size
        if m == 1:
            return self.ir[0] * block
        if not fastpath.enabled():
            out, zf = sps.lfilter(self.ir, [1.0], block,
                                  zi=self.state[: m - 1])
            self.state[: m - 1] = zf
            return out
        n = block.size
        full = fir_apply(block, self.ir, mode="full")
        out = full[:n]
        k = min(n, m - 1)
        out[:k] += self.state[:k]
        carry = full[n:]
        if n < m - 1:
            carry[: m - 1 - n] += self.state[n:]
        self.state[: m - 1] = carry
        self.state[m - 1:] = 0.0
        return out
