"""Unit conversions used throughout the library.

Acoustics and RF both measure power ratios in decibels but with different
reference points; this module keeps every conversion in one place so the
rest of the code never hand-rolls ``10 * log10`` expressions.

Conventions
-----------
* *Power* quantities (mean-square signal values) convert with ``10 log10``.
* *Amplitude* quantities (RMS values, filter magnitudes) convert with
  ``20 log10``.
* Sound pressure level (SPL) is referenced to 20 µPa; in this simulation a
  digital signal with RMS 1.0 is calibrated to :data:`FULL_SCALE_SPL_DB`.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError

__all__ = [
    "REFERENCE_PRESSURE_PA",
    "FULL_SCALE_SPL_DB",
    "EPSILON_POWER",
    "db_to_power",
    "power_to_db",
    "db_to_amplitude",
    "amplitude_to_db",
    "rms",
    "signal_power",
    "signal_power_db",
    "spl_db",
    "amplitude_for_spl",
    "snr_db",
    "cancellation_db",
]

#: Standard acoustic reference pressure (20 micro-pascal), in pascal.
REFERENCE_PRESSURE_PA = 20e-6

#: SPL, in dB, assigned to a digital signal of RMS 1.0.  The paper runs its
#: measurement microphone at 67 dB SPL ambient noise; this calibration
#: constant lets tests express levels in the same physical units.
FULL_SCALE_SPL_DB = 94.0

#: Floor used to avoid log-of-zero when converting powers to dB.
EPSILON_POWER = 1e-20


def db_to_power(db):
    """Convert a power ratio in dB to a linear power ratio."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def power_to_db(power):
    """Convert a linear power ratio to dB, flooring at ``EPSILON_POWER``."""
    power = np.maximum(np.asarray(power, dtype=float), EPSILON_POWER)
    return 10.0 * np.log10(power)


def db_to_amplitude(db):
    """Convert an amplitude ratio in dB to a linear amplitude ratio."""
    return 10.0 ** (np.asarray(db, dtype=float) / 20.0)


def amplitude_to_db(amplitude):
    """Convert a linear amplitude ratio to dB."""
    amplitude = np.maximum(np.abs(np.asarray(amplitude, dtype=float)),
                           np.sqrt(EPSILON_POWER))
    return 20.0 * np.log10(amplitude)


def rms(signal):
    """Root-mean-square value of a signal.

    Raises
    ------
    SignalError
        If the signal is empty.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise SignalError("cannot compute RMS of an empty signal")
    return float(np.sqrt(np.mean(np.square(signal))))


def signal_power(signal):
    """Mean-square power of a signal."""
    signal = np.asarray(signal, dtype=float)
    if signal.size == 0:
        raise SignalError("cannot compute power of an empty signal")
    return float(np.mean(np.square(signal)))


def signal_power_db(signal):
    """Mean-square power of a signal in dB (relative to unit power)."""
    return float(power_to_db(signal_power(signal)))


def spl_db(signal, full_scale_spl_db=FULL_SCALE_SPL_DB):
    """Sound pressure level of a digital signal under the library calibration.

    A signal with RMS 1.0 maps to ``full_scale_spl_db`` dB SPL.
    """
    return float(amplitude_to_db(rms(signal))) + full_scale_spl_db


def amplitude_for_spl(target_spl_db, full_scale_spl_db=FULL_SCALE_SPL_DB):
    """RMS amplitude a signal must have to present ``target_spl_db`` dB SPL."""
    return float(db_to_amplitude(target_spl_db - full_scale_spl_db))


def snr_db(signal, noise):
    """Signal-to-noise ratio between two arrays, in dB."""
    return signal_power_db(signal) - signal_power_db(noise)


def cancellation_db(before, after):
    """Cancellation achieved between two residual recordings, in dB.

    Negative values mean the ``after`` signal is quieter — matching the
    paper's plots where "more cancellation" is more negative (e.g. −15 dB).
    """
    return signal_power_db(after) - signal_power_db(before)
