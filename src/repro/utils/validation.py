"""Argument-validation helpers.

Simulations are long-running; these helpers reject bad configuration at
construction time with precise error messages instead of letting NaNs
surface minutes later.  All helpers return the validated (and possibly
coerced) value so they compose in assignments::

    self.sample_rate = check_positive("sample_rate", sample_rate)
"""

from __future__ import annotations

import numbers

import numpy as np

from ..errors import ConfigurationError, SignalError

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_int",
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_waveform",
    "check_impulse_response",
    "check_same_length",
]


def check_positive(name, value):
    """Validate that ``value`` is a finite number > 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be finite and > 0, got {value}")
    return value


def check_non_negative(name, value):
    """Validate that ``value`` is a finite number >= 0."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ConfigurationError(f"{name} must be finite and >= 0, got {value}")
    return value


def check_in_range(name, value, low, high, inclusive=True):
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not np.isfinite(value) or not ok:
        raise ConfigurationError(f"{name} must be in {bounds}, got {value}")
    return value


def check_int(name, value):
    """Validate that ``value`` is an integer (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    return int(value)


def check_positive_int(name, value):
    """Validate that ``value`` is an integer > 0."""
    value = check_int(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    return value


def check_non_negative_int(name, value):
    """Validate that ``value`` is an integer >= 0."""
    value = check_int(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name, value):
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)


def check_waveform(name, signal, min_length=1, allow_complex=False):
    """Validate and coerce a 1-D waveform to a float (or complex) ndarray.

    Raises
    ------
    SignalError
        If the array is not 1-D, too short, or contains non-finite values.
    """
    signal = np.asarray(signal)
    if signal.ndim != 1:
        raise SignalError(f"{name} must be 1-D, got shape {signal.shape}")
    if signal.size < min_length:
        raise SignalError(
            f"{name} must have at least {min_length} samples, got {signal.size}"
        )
    if np.iscomplexobj(signal):
        if not allow_complex:
            raise SignalError(f"{name} must be real-valued")
        signal = signal.astype(np.complex128, copy=False)
    else:
        signal = signal.astype(np.float64, copy=False)
    if not np.all(np.isfinite(signal)):
        raise SignalError(f"{name} contains non-finite samples")
    return signal


def check_impulse_response(name, h, min_length=1):
    """Validate an impulse response: a real 1-D waveform with some energy."""
    h = check_waveform(name, h, min_length=min_length)
    if not np.any(h):
        raise SignalError(f"{name} has no energy (all-zero impulse response)")
    return h


def check_same_length(name_a, a, name_b, b):
    """Validate that two arrays have equal length."""
    if len(a) != len(b):
        raise SignalError(
            f"{name_a} and {name_b} must have equal length, "
            f"got {len(a)} and {len(b)}"
        )
    return a, b
