"""Parallel experiment executor: fan experiment runs out over processes.

The experiment suite is embarrassingly parallel — every registered
experiment (and every point of a parameter sweep) is an independent
simulation.  :func:`run_experiments` fans them out over a
``concurrent.futures`` process pool, with a serial in-process fallback
whenever a pool is unavailable or ``jobs=1``, and folds each worker's
:mod:`repro.obs` trace/metrics documents into one merged report
(:class:`SuiteReport`).

Run context travels as a :class:`~repro.runtime.request.RunRequest`:
the request is pickled into each worker and applied *there* (seed,
duration, fault plan, kernel backend, obs switch), so parallel workers
see exactly the context a serial run would — the legacy
``jobs=``/``params=``/``with_obs=`` kwargs still work but emit a
``DeprecationWarning``.

This is what backs ``repro run-all --jobs N`` and
:func:`repro.runtime.sweep`.  Determinism: a worker runs exactly the
same registry entry point with exactly the same params and request as
a serial call, so parallel results equal serial ones — the property
``tests/test_runtime.py`` locks in.

Worker loss and deadlines
-------------------------
A worker process can die outright (OOM killer, segfaulting native
code, a chaos injection) — that surfaces as ``BrokenProcessPool``, not
as a Python exception the job could catch.  The executor treats it as
a *retryable* event governed by a :class:`JobRetryPolicy`: the pool is
rebuilt (bounded by ``max_pool_rebuilds``), the suspect job is retried
after a deterministic jittered backoff (``max_retries`` attempts),
innocent jobs that were queued behind it are resubmitted uncharged,
and a job that keeps killing its worker is recorded as a failed
outcome instead of sinking the suite.  A per-job completion deadline
(``timeout_s``) bounds stuck jobs the same way — recorded as failures,
never retried (a deterministic overrun would just hang again).  When
the rebuild budget runs out the suite **aborts deliberately**:
:attr:`SuiteReport.aborted` is set and every unfinished job carries an
abort error — a partial report, never a hang, and never a serial
re-run of a job that just killed two processes.  Retry activity is
counted under the ``runtime.retry.*`` obs metrics.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
import random
import time
import warnings
from concurrent import futures

from .. import obs
from ..errors import ConfigurationError
from .merge import (
    merge_metrics_documents,
    merge_trace_documents,
    render_metrics_document,
)
from .request import RunRequest

__all__ = ["JobOutcome", "JobRetryPolicy", "SuiteReport", "run_experiments"]

#: Schema identifier of :meth:`SuiteReport.to_dict` — the ``report/v2``
#: envelope family (shared with ``ExperimentResult``; documents carry
#: ``kind: "suite"`` vs ``kind: "result"``).
SUITE_SCHEMA = "repro.runtime.report/v2"

_UNSET = object()


@dataclasses.dataclass(frozen=True)
class JobRetryPolicy:
    """How the executor treats worker loss and stuck jobs.

    Parameters
    ----------
    max_retries:
        Attempts *beyond the first* a job gets after killing its
        worker.  ``0`` records the first worker death as the job's
        failure.
    timeout_s:
        Per-job completion deadline in seconds, or ``None`` (default)
        for no deadline.  Measured from when the executor starts
        waiting on the job (jobs are awaited in submission order, so
        earlier waits give queued jobs running time).  A timed-out job
        is recorded as failed and **not** retried; its worker is
        abandoned to finish in the background while the remaining jobs
        proceed.
    backoff_s / backoff_factor / max_backoff_s:
        Backoff slept before a crashed job's retry: ``backoff_s *
        backoff_factor**(attempt - 1)``, capped.
    jitter:
        Uniform jitter fraction on the backoff, drawn from a generator
        seeded by the request seed — reproducible, but two retrying
        suites don't thundering-herd in lock step.
    max_pool_rebuilds:
        Worker deaths tolerated suite-wide before the executor stops
        rebuilding pools and aborts with a partial report.
    """

    max_retries: int = 1
    timeout_s: float | None = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.25
    max_pool_rebuilds: int = 3

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ConfigurationError("timeout_s must be > 0 (or None)")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff windows must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.max_pool_rebuilds < 0:
            raise ConfigurationError("max_pool_rebuilds must be >= 0")

    def backoff_for(self, attempt, rng):
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        base = min(self.backoff_s * self.backoff_factor ** (attempt - 1),
                   self.max_backoff_s)
        return base * (1.0 + self.jitter * rng.random())


@dataclasses.dataclass
class JobOutcome:
    """One experiment run plus the observability it recorded."""

    name: str
    params: dict
    result: object        # the runner's ExperimentResult envelope
    trace: dict           # repro.obs.trace/v1
    metrics: dict         # repro.obs.metrics/v1
    wall_s: float
    error: str | None = None  # traceback text when the run failed

    @property
    def ok(self):
        """Did the run produce a result?"""
        return self.error is None


def _execute_job(name, params, request):
    """Worker entry point (module-level so process pools can pickle it).

    Runs one registered experiment with a clean observability slate and
    returns a :class:`JobOutcome`; exceptions are captured as text so a
    single failing experiment doesn't sink the whole suite.  The
    :class:`RunRequest` is applied *here*, inside the worker — its
    kernel backend, seed, fault plan, and obs switch reach the run the
    same way serial execution would apply them.
    """
    # Imported here, not at module top: worker processes pay the import
    # only when they actually run something.
    from ..eval import experiments

    obs.reset()
    started = time.perf_counter()
    error = None
    result = None
    try:
        entry = experiments.get(name)
        if request.with_obs:
            with obs.enabled_scope():
                result = entry.run(request=request, **params)
        else:
            result = entry.run(request=request, **params)
    except Exception:  # noqa: BLE001 — reported, not swallowed
        import traceback
        error = traceback.format_exc()
    outcome = JobOutcome(
        name=name,
        params=dict(params),
        result=result,
        trace=obs.get_tracer().to_dict(),
        metrics=obs.get_registry().to_dict(),
        wall_s=time.perf_counter() - started,
        error=error,
    )
    obs.reset()
    return outcome


@dataclasses.dataclass
class SuiteReport:
    """Everything one ``run_experiments`` call produced, merged."""

    outcomes: list
    jobs: int
    wall_s: float
    parallel: bool        # did the pool actually run, or the fallback?
    request: object = None    # the RunRequest (or its dict after from_json)
    metrics_doc: dict | None = None   # merged-doc overrides installed by
    trace_doc: dict | None = None     # from_json (no live obs to re-merge)
    aborted: bool = False     # pool rebuild budget exhausted mid-suite

    def results(self):
        """``name -> ExperimentResult`` for the successful runs."""
        return {o.name: o.result for o in self.outcomes if o.ok}

    def failures(self):
        """``name -> traceback text`` for the failed runs."""
        return {o.name: o.error for o in self.outcomes if not o.ok}

    @property
    def merged_metrics(self):
        """All workers' metrics as one ``repro.obs.metrics/v1`` doc."""
        if self.metrics_doc is not None:
            return self.metrics_doc
        return merge_metrics_documents(o.metrics for o in self.outcomes)

    @property
    def merged_trace(self):
        """All workers' spans as one ``repro.obs.trace/v1`` forest."""
        if self.trace_doc is not None:
            return self.trace_doc
        return merge_trace_documents(
            (o.name, o.trace) for o in self.outcomes)

    def _request_doc(self):
        if self.request is None:
            return None
        if hasattr(self.request, "to_dict"):
            return self.request.to_dict()
        return dict(self.request)

    def to_dict(self):
        """JSON-able ``report/v2`` suite document.

        Each run record is the run's ``report/v2`` result document
        (envelope metadata + report text) extended with the suite-level
        ``wall_s``/``ok``/``error`` fields; the rich result objects
        hold numpy arrays and stay in :attr:`outcomes`.
        """
        runs = []
        for o in self.outcomes:
            if o.ok:
                record = o.result.to_dict()
            else:
                record = {
                    "schema": SUITE_SCHEMA,
                    "kind": "result",
                    "name": o.name,
                    "params": o.params,
                    "report": None,
                }
            record.update(wall_s=o.wall_s, ok=o.ok, error=o.error)
            runs.append(record)
        return {
            "schema": SUITE_SCHEMA,
            "kind": "suite",
            "jobs": self.jobs,
            "parallel": self.parallel,
            "aborted": self.aborted,
            "wall_s": self.wall_s,
            "request": self._request_doc(),
            "runs": runs,
            "metrics": self.merged_metrics,
            "trace": self.merged_trace,
        }

    def to_json(self, **kwargs):
        """:meth:`to_dict` as a JSON string (kwargs go to ``json.dumps``)."""
        kwargs.setdefault("default", str)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, document):
        """Rebuild a report from a ``report/v2`` suite document.

        Result envelopes come back with
        :class:`~repro.eval.experiments.registry.RehydratedResults`
        placeholders (report text only); per-outcome obs documents are
        gone, but the merged metrics/trace are restored, so
        ``from_dict(x.to_dict()).to_dict() == x.to_dict()``.
        """
        from ..eval.experiments.registry import ExperimentResult

        schema = document.get("schema")
        if schema != SUITE_SCHEMA:
            raise ConfigurationError(
                f"cannot load suite document with schema {schema!r}; "
                f"expected {SUITE_SCHEMA!r}"
            )
        if document.get("kind") not in (None, "suite"):
            raise ConfigurationError(
                f"expected a 'suite' document, got kind "
                f"{document.get('kind')!r}"
            )
        outcomes = []
        for record in document.get("runs", []):
            ok = bool(record.get("ok"))
            result = None
            if ok:
                envelope = {k: v for k, v in record.items()
                            if k not in ("wall_s", "ok", "error")}
                result = ExperimentResult.from_dict(envelope)
            outcomes.append(JobOutcome(
                name=record["name"],
                params=dict(record.get("params") or {}),
                result=result,
                trace={},
                metrics={},
                wall_s=float(record.get("wall_s", 0.0)),
                error=record.get("error"),
            ))
        return cls(
            outcomes=outcomes,
            jobs=int(document.get("jobs", 1)),
            wall_s=float(document.get("wall_s", 0.0)),
            parallel=bool(document.get("parallel", False)),
            aborted=bool(document.get("aborted", False)),
            request=document.get("request"),
            metrics_doc=document.get("metrics"),
            trace_doc=document.get("trace"),
        )

    @classmethod
    def from_json(cls, text):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def report(self):
        """Terminal summary: per-run wall times plus merged metrics."""
        lines = [
            f"== runtime suite: {len(self.outcomes)} experiment(s), "
            f"jobs={self.jobs}"
            f"{' (parallel)' if self.parallel else ' (serial)'}"
            f"{' ABORTED' if self.aborted else ''}, "
            f"total {self.wall_s:.1f}s =="
        ]
        for o in self.outcomes:
            status = "ok" if o.ok else "FAILED"
            lines.append(f"  {o.name:<12} {o.wall_s:7.1f}s  {status}")
        lines.append("")
        lines.append("--- merged metrics ---")
        lines.append(render_metrics_document(self.merged_metrics))
        return "\n".join(lines)


def _run_serial(jobs_list, request):
    return [_execute_job(name, params, request)
            for name, params in jobs_list]


def _count_retry(event):
    if obs.enabled():
        obs.get_registry().counter(f"runtime.retry.{event}").inc()


def _failed_outcome(name, params, error):
    """A synthesized failure record (worker death / deadline / abort)."""
    return JobOutcome(name=name, params=dict(params), result=None,
                     trace={}, metrics={}, wall_s=0.0, error=error)


class _PoolAborted(Exception):
    """Internal: the rebuild budget ran out; carries partial outcomes."""

    def __init__(self, outcomes):
        super().__init__("process pool rebuild budget exhausted")
        self.outcomes = outcomes


def _run_pool(jobs_list, request, policy, n_workers):
    """Run ``jobs_list`` on a process pool under ``policy``.

    Returns ``(outcomes, aborted)`` with one outcome per job in input
    order.  Worker deaths are retried per :class:`JobRetryPolicy`;
    the first pool *construction* failure is not handled here — the
    caller's serial fallback owns that case.
    """
    total = len(jobs_list)
    outcomes = [None] * total
    attempts = [0] * total
    rebuilds = 0
    rng = random.Random(0 if request.seed is None else int(request.seed))
    queue = list(range(total))
    timed_out = False
    pool = futures.ProcessPoolExecutor(max_workers=n_workers)

    def rebuild():
        nonlocal pool, rebuilds
        rebuilds += 1
        if rebuilds > policy.max_pool_rebuilds:
            for idx in range(total):
                if outcomes[idx] is None:
                    name, params = jobs_list[idx]
                    outcomes[idx] = _failed_outcome(
                        name, params,
                        f"suite aborted: {rebuilds} worker death(s) "
                        f"exceeded max_pool_rebuilds="
                        f"{policy.max_pool_rebuilds}")
            _count_retry("aborts")
            raise _PoolAborted(outcomes)
        pool.shutdown(wait=False, cancel_futures=True)
        pool = futures.ProcessPoolExecutor(max_workers=n_workers)

    def harvest(fut_by_idx, pending):
        """After a breakage: keep finished results, requeue the rest.

        Jobs that completed before the pool broke keep their outcomes;
        undone jobs go back on the queue *uncharged* — only the job
        whose wait surfaced the breakage is a suspect.
        """
        for idx in pending:
            fut = fut_by_idx[idx]
            if fut.done() and not fut.cancelled() \
                    and fut.exception() is None:
                outcomes[idx] = fut.result()
            else:
                attempts[idx] -= 1
                queue.append(idx)

    try:
        while queue:
            pending = list(queue)
            queue = []
            fut_by_idx = {}
            charged = []
            try:
                for idx in pending:
                    name, params = jobs_list[idx]
                    attempts[idx] += 1
                    charged.append(idx)
                    fut_by_idx[idx] = pool.submit(
                        _execute_job, name, params, request)
            except futures.BrokenExecutor:
                # The pool died before this wave even started; nobody
                # is a suspect — requeue everything uncharged, rebuild.
                for idx in charged:
                    attempts[idx] -= 1
                queue.extend(pending)
                rebuild()
                continue

            wave = list(pending)
            while wave:
                idx = wave.pop(0)
                name, params = jobs_list[idx]
                fut = fut_by_idx[idx]
                try:
                    outcomes[idx] = fut.result(timeout=policy.timeout_s)
                except futures.TimeoutError:
                    # Stuck job: record the deadline miss and move on.
                    # Its worker finishes (or dies) in the background;
                    # no retry — a deterministic overrun would only
                    # hang again.
                    fut.cancel()
                    timed_out = True
                    _count_retry("timeouts")
                    outcomes[idx] = _failed_outcome(
                        name, params,
                        f"deadline exceeded: job still running after "
                        f"{policy.timeout_s}s (JobRetryPolicy.timeout_s)")
                except futures.BrokenExecutor:
                    # The worker running (or about to run) this job
                    # died.  Charge this job, requeue the innocent
                    # bystanders, rebuild the pool.
                    _count_retry("worker_deaths")
                    if attempts[idx] <= policy.max_retries:
                        queue.append(idx)
                        delay = policy.backoff_for(attempts[idx], rng)
                        if delay > 0:
                            time.sleep(delay)
                        _count_retry("retries")
                    else:
                        _count_retry("exhausted")
                        outcomes[idx] = _failed_outcome(
                            name, params,
                            f"worker died running {name!r} "
                            f"({attempts[idx]} attempt(s); "
                            f"max_retries={policy.max_retries})")
                    harvest(fut_by_idx, wave)
                    wave = []
                    rebuild()
    except _PoolAborted:
        return outcomes, True
    finally:
        pool.shutdown(wait=not timed_out, cancel_futures=True)
    return outcomes, False


def _resolve_request(request, jobs, params, with_obs):
    """Fold the legacy kwargs into one :class:`RunRequest`."""
    legacy = {name: value
              for name, value in (("jobs", jobs), ("params", params),
                                  ("with_obs", with_obs))
              if value is not _UNSET}
    if not legacy:
        return request if request is not None else RunRequest()
    if request is not None:
        raise ConfigurationError(
            "pass either request= or the legacy kwargs, not both "
            f"(got request plus {', '.join(sorted(legacy))})"
        )
    warnings.warn(
        "run_experiments(jobs=/params=/with_obs=) is deprecated; pass "
        "request=repro.runtime.RunRequest(...) instead",
        DeprecationWarning, stacklevel=3,
    )
    return RunRequest(
        jobs=legacy.get("jobs", 1),
        with_obs=bool(legacy.get("with_obs", True)),
        params=legacy.get("params") or {},
    )


def run_experiments(names, request=None, jobs=_UNSET, params=_UNSET,
                    per_experiment=None, with_obs=_UNSET, retry=None):
    """Run several experiments, optionally in parallel processes.

    Parameters
    ----------
    names:
        Iterable of registry names, or ``(name, params)`` pairs for
        per-run params (duplicates allowed — a sweep runs the same
        experiment at many parameter points).
    request:
        A :class:`~repro.runtime.request.RunRequest` carrying the run
        context: worker count (``request.jobs``; ``1`` runs serially
        in-process), seed/duration/fault plan/extra params broadcast
        to every run (applied where each runner accepts them), the
        kernel backend, and the obs switch.  ``None`` means the
        default request.
    per_experiment:
        ``name -> params dict`` merged per run (these are strict: an
        unknown name raises ``UnknownParameterError``).
    retry:
        A :class:`JobRetryPolicy` governing worker-death retries,
        per-job deadlines, and the abort budget (defaults apply when
        ``None``).  Only meaningful on the parallel path — the serial
        path runs in-process, where a worker cannot die separately
        and a deadline cannot be enforced.
    jobs / params / with_obs:
        Deprecated — the pre-``RunRequest`` spelling of the same
        context.  Still honored (folded into a request) with a
        ``DeprecationWarning``; mutually exclusive with ``request=``.

    Returns a :class:`SuiteReport`.  If the process pool cannot be
    *created* (pickling limits, a sandboxed platform), the work falls
    back to the serial path — results are identical either way, only
    the wall clock differs.  Worker deaths *during* the run are
    handled by the retry policy instead (see the module docstring) —
    re-running a worker-killing job in the caller's own process is
    never a safe fallback.
    """
    request = _resolve_request(request, jobs, params, with_obs)
    retry = retry or JobRetryPolicy()
    jobs_list = []
    for item in names:
        if isinstance(item, str):
            name, own = item, {}
        else:
            name, own = item
        merged = dict((per_experiment or {}).get(name, {}))
        merged.update(own)
        jobs_list.append((name, merged))

    # Validate every name up front — a typo should fail fast here, not
    # half-way through a worker fan-out.
    from ..eval import experiments
    for name, __ in jobs_list:
        experiments.get(name)

    started = time.perf_counter()
    n_workers = min(request.jobs, max(len(jobs_list), 1))
    # A pool is used whenever the request asks for workers — even for a
    # single job, so the retry policy (deadlines, worker-death
    # isolation) applies to it.
    parallel = request.jobs > 1 and bool(jobs_list)
    aborted = False
    if not parallel:
        outcomes = _run_serial(jobs_list, request)
    else:
        try:
            outcomes, aborted = _run_pool(jobs_list, request, retry,
                                          n_workers)
        except (pickle.PicklingError, OSError, ImportError):
            # No usable pool on this platform — same work, one process.
            parallel = False
            outcomes = _run_serial(jobs_list, request)

    return SuiteReport(
        outcomes=outcomes,
        jobs=request.jobs,
        wall_s=time.perf_counter() - started,
        parallel=parallel,
        request=request,
        aborted=aborted,
    )
