"""Parallel experiment executor: fan experiment runs out over processes.

The experiment suite is embarrassingly parallel — every registered
experiment (and every point of a parameter sweep) is an independent
simulation.  :func:`run_experiments` fans them out over a
``concurrent.futures`` process pool, with a serial in-process fallback
whenever a pool is unavailable or ``jobs=1``, and folds each worker's
:mod:`repro.obs` trace/metrics documents into one merged report
(:class:`SuiteReport`).

This is what backs ``repro run-all --jobs N`` and
:func:`repro.runtime.sweep`.  Determinism: a worker runs exactly the
same registry entry point with exactly the same params and seed as a
serial call, so parallel results equal serial ones — the property
``tests/test_runtime.py`` locks in.
"""

from __future__ import annotations

import dataclasses
import pickle
import time
from concurrent import futures

from .. import obs
from ..errors import ConfigurationError
from .merge import (
    merge_metrics_documents,
    merge_trace_documents,
    render_metrics_document,
)

__all__ = ["JobOutcome", "SuiteReport", "run_experiments"]

#: Schema identifier of :meth:`SuiteReport.to_dict`.
SUITE_SCHEMA = "repro.runtime.report/v1"


@dataclasses.dataclass
class JobOutcome:
    """One experiment run plus the observability it recorded."""

    name: str
    params: dict
    result: object        # the runner's ExperimentResult envelope
    trace: dict           # repro.obs.trace/v1
    metrics: dict         # repro.obs.metrics/v1
    wall_s: float
    error: str | None = None  # traceback text when the run failed

    @property
    def ok(self):
        """Did the run produce a result?"""
        return self.error is None


def _execute_job(name, params, with_obs):
    """Worker entry point (module-level so process pools can pickle it).

    Runs one registered experiment with a clean observability slate and
    returns a :class:`JobOutcome`; exceptions are captured as text so a
    single failing experiment doesn't sink the whole suite.
    """
    # Imported here, not at module top: worker processes pay the import
    # only when they actually run something.
    from ..eval import experiments

    obs.reset()
    started = time.perf_counter()
    error = None
    result = None
    try:
        entry = experiments.get(name)
        if with_obs:
            with obs.enabled_scope():
                result = entry.run(**params)
        else:
            result = entry.run(**params)
    except Exception:  # noqa: BLE001 — reported, not swallowed
        import traceback
        error = traceback.format_exc()
    outcome = JobOutcome(
        name=name,
        params=dict(params),
        result=result,
        trace=obs.get_tracer().to_dict(),
        metrics=obs.get_registry().to_dict(),
        wall_s=time.perf_counter() - started,
        error=error,
    )
    obs.reset()
    return outcome


@dataclasses.dataclass
class SuiteReport:
    """Everything one ``run_experiments`` call produced, merged."""

    outcomes: list
    jobs: int
    wall_s: float
    parallel: bool        # did the pool actually run, or the fallback?

    def results(self):
        """``name -> ExperimentResult`` for the successful runs."""
        return {o.name: o.result for o in self.outcomes if o.ok}

    def failures(self):
        """``name -> traceback text`` for the failed runs."""
        return {o.name: o.error for o in self.outcomes if not o.ok}

    @property
    def merged_metrics(self):
        """All workers' metrics as one ``repro.obs.metrics/v1`` doc."""
        return merge_metrics_documents(o.metrics for o in self.outcomes)

    @property
    def merged_trace(self):
        """All workers' spans as one ``repro.obs.trace/v1`` forest."""
        return merge_trace_documents(
            (o.name, o.trace) for o in self.outcomes)

    def to_dict(self):
        """JSON-able ``repro.runtime.report/v1`` suite document.

        Carries each run's envelope metadata and report text (the rich
        result objects hold numpy arrays and stay in :attr:`outcomes`).
        """
        runs = []
        for o in self.outcomes:
            runs.append({
                "name": o.name,
                "params": (o.result["params"] if o.ok else o.params),
                "wall_s": o.wall_s,
                "ok": o.ok,
                "report": (o.result.report() if o.ok else None),
                "error": o.error,
            })
        return {
            "schema": SUITE_SCHEMA,
            "jobs": self.jobs,
            "parallel": self.parallel,
            "wall_s": self.wall_s,
            "runs": runs,
            "metrics": self.merged_metrics,
            "trace": self.merged_trace,
        }

    def report(self):
        """Terminal summary: per-run wall times plus merged metrics."""
        lines = [
            f"== runtime suite: {len(self.outcomes)} experiment(s), "
            f"jobs={self.jobs}"
            f"{' (parallel)' if self.parallel else ' (serial)'}, "
            f"total {self.wall_s:.1f}s =="
        ]
        for o in self.outcomes:
            status = "ok" if o.ok else "FAILED"
            lines.append(f"  {o.name:<12} {o.wall_s:7.1f}s  {status}")
        lines.append("")
        lines.append("--- merged metrics ---")
        lines.append(render_metrics_document(self.merged_metrics))
        return "\n".join(lines)


def _run_serial(jobs_list, with_obs):
    return [_execute_job(name, params, with_obs)
            for name, params in jobs_list]


def run_experiments(names, jobs=1, params=None, per_experiment=None,
                    with_obs=True):
    """Run several experiments, optionally in parallel processes.

    Parameters
    ----------
    names:
        Iterable of registry names, or ``(name, params)`` pairs for
        per-run params (duplicates allowed — a sweep runs the same
        experiment at many parameter points).
    jobs:
        Worker process count; ``1`` runs serially in-process.  More
        workers than experiments is trimmed to the experiment count.
    params:
        Base params applied to every run (e.g. ``duration_s``/``seed``
        from the CLI).  ``None`` values are dropped by the registry.
    per_experiment:
        ``name -> params dict`` merged over ``params`` per run.
    with_obs:
        Record :mod:`repro.obs` traces/metrics around each run and
        merge them into the report.

    Returns a :class:`SuiteReport`.  If the process pool cannot be used
    (pickling limits, a broken pool, a sandboxed platform), the
    remaining work falls back to the serial path — results are
    identical either way, only the wall clock differs.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    base = dict(params or {})
    jobs_list = []
    for item in names:
        if isinstance(item, str):
            name, own = item, {}
        else:
            name, own = item
        merged = dict(base)
        merged.update((per_experiment or {}).get(name, {}))
        merged.update(own)
        jobs_list.append((name, merged))

    # Validate every name up front — a typo should fail fast here, not
    # half-way through a worker fan-out.
    from ..eval import experiments
    for name, __ in jobs_list:
        experiments.get(name)

    started = time.perf_counter()
    n_workers = min(jobs, max(len(jobs_list), 1))
    parallel = n_workers > 1
    if not parallel:
        outcomes = _run_serial(jobs_list, with_obs)
    else:
        try:
            with futures.ProcessPoolExecutor(max_workers=n_workers) as pool:
                outcomes = list(pool.map(
                    _execute_job,
                    [name for name, __ in jobs_list],
                    [p for __, p in jobs_list],
                    [with_obs] * len(jobs_list),
                ))
        except (futures.BrokenExecutor, pickle.PicklingError, OSError,
                ImportError):
            # No usable pool on this platform — same work, one process.
            parallel = False
            outcomes = _run_serial(jobs_list, with_obs)

    return SuiteReport(
        outcomes=outcomes,
        jobs=jobs,
        wall_s=time.perf_counter() - started,
        parallel=parallel,
    )
