"""Content-addressed cache for scenario acoustic channels.

The image-source model (:mod:`repro.acoustics.rir`) is the most
expensive kernel in the whole pipeline, and every experiment, benchmark,
and :class:`~repro.core.system.MuteSystem` construction re-runs it for
*identical geometry*.  This module makes the second and every later
build of the same scenario effectively free:

* :func:`scenario_cache_key` derives a deterministic, cross-process
  SHA-256 key from ``(Room, positions, RirSettings, sample_rate)`` —
  no ``hash()`` involved, so ``PYTHONHASHSEED`` cannot perturb it;
* :class:`ChannelCache` holds an in-process LRU of raw impulse
  responses plus an **opt-in** on-disk store (``~/.cache/repro`` by
  default) with versioned, atomically written ``.npz`` entries;
* :meth:`Scenario.build_channels` routes through the process-global
  cache (see :func:`get_channel_cache`), so every caller hits it
  transparently.

Cache hits are **bit-identical** to cold builds: entries store the raw
FIR arrays and each hit materializes *fresh* :class:`AcousticChannel`
objects from private copies, so streaming filter state is never shared
between callers.  Corrupt or truncated disk entries are detected,
moved aside into a ``.quarantine/`` sidecar directory (so the bytes
survive for post-mortem inspection), and recomputed — a cache can lose
data, never corrupt a result.  Full scheme in ``docs/RUNTIME.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

from .. import obs
from ..acoustics.channels import AcousticChannel
from ..errors import ConfigurationError

__all__ = [
    "CHANNEL_KEY_VERSION",
    "ChannelCache",
    "default_disk_dir",
    "get_channel_cache",
    "scenario_cache_key",
    "set_channel_cache",
]

#: Bumped whenever the key derivation *or* the channel computation
#: changes meaning; stale disk entries from older versions simply miss.
CHANNEL_KEY_VERSION = 1

#: On-disk entry layout version (independent of the key version).
DISK_FORMAT_VERSION = 1

#: Environment variable that overrides the on-disk store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable that opts the default cache into the disk store.
DISK_CACHE_ENV = "REPRO_DISK_CACHE"


def default_disk_dir():
    """The default on-disk store: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    root = os.environ.get(CACHE_DIR_ENV)
    base = Path(root).expanduser() if root else Path("~/.cache/repro").expanduser()
    return base / "channels"


def _fields_blob(obj):
    """``field=repr(value)`` for every dataclass field, in field order.

    ``repr`` of floats round-trips exactly, so two processes always
    derive the same blob for the same values.
    """
    pairs = []
    for field in dataclasses.fields(obj):
        pairs.append(f"{field.name}={getattr(obj, field.name)!r}")
    return ",".join(pairs)


def scenario_cache_key(scenario):
    """Deterministic content key for one scenario's acoustic channels.

    Covers everything :meth:`Scenario.compute_channels` reads: room
    geometry and absorption, source/client/relay/speaker positions, the
    sample rate, and every :class:`RirSettings` field — plus
    :data:`CHANNEL_KEY_VERSION` so algorithm changes invalidate old
    entries.  Stable across processes and ``PYTHONHASHSEED`` values.
    """
    parts = [
        f"repro.channels/v{CHANNEL_KEY_VERSION}",
        f"room:{_fields_blob(scenario.room)}",
        f"source:{_fields_blob(scenario.source)}",
        f"client:{_fields_blob(scenario.client)}",
        "relays:" + ";".join(_fields_blob(r) for r in scenario.relays),
        f"speaker_offset_m:{scenario.speaker_offset_m!r}",
        f"sample_rate:{scenario.sample_rate!r}",
        f"rir:{_fields_blob(scenario.rir_settings)}",
    ]
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class _Entry:
    """Raw cached payload: arrays only, no live filter state."""

    h_ne: np.ndarray
    h_nr: tuple
    h_se: np.ndarray
    lead: tuple
    sample_rate: float


class ChannelCache:
    """In-process LRU + optional on-disk store for scenario channels.

    Parameters
    ----------
    max_entries:
        LRU capacity; the oldest entry is evicted past this.  A bench
        room's channels are a few hundred KB, so the default keeps the
        working set of a full experiment suite resident.
    disk_dir:
        Directory for the persistent store, or ``None`` (memory only).
        Entries are written atomically (temp file + ``os.replace``) and
        validated on load; anything unreadable is quarantined under
        ``<disk_dir>/.quarantine/`` and rebuilt from scratch.
    """

    def __init__(self, max_entries=64, disk_dir=None):
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_discards = 0
        self.quarantined = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get_or_build(self, scenario):
        """The scenario's :class:`ScenarioChannels`, cached.

        Memory hit → disk hit → cold compute, in that order; cold
        results are inserted into both layers.  Every return value is
        materialized from private array copies, so callers can stream
        through the channels without contaminating the cache.
        """
        key = scenario_cache_key(scenario)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("hit")
                return self._materialize(entry)

        entry = self._disk_load(key)
        if entry is not None:
            with self._lock:
                self._insert(key, entry)
                self.disk_hits += 1
                self._count("disk_hit")
            return self._materialize(entry)

        channels = scenario.compute_channels()
        entry = _Entry(
            h_ne=np.array(channels.h_ne.ir, copy=True),
            h_nr=tuple(np.array(ch.ir, copy=True) for ch in channels.h_nr),
            h_se=np.array(channels.h_se.ir, copy=True),
            lead=tuple(int(v) for v in channels.acoustic_lead_samples),
            sample_rate=float(channels.sample_rate),
        )
        with self._lock:
            self._insert(key, entry)
            self.misses += 1
            self._count("miss")
        self._disk_store(key, entry)
        return channels

    def stats(self):
        """Hit/miss counters as a plain dict (for reports and tests)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_discards": self.disk_discards,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
        }

    def clear(self, disk=False):
        """Drop every in-memory entry (and the disk store if asked)."""
        with self._lock:
            self._entries.clear()
        if disk and self.disk_dir is not None and self.disk_dir.exists():
            for path in self.disk_dir.glob("*.npz"):
                try:
                    path.unlink()
                except OSError:
                    pass

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _count(self, result):
        if obs.enabled():
            obs.get_registry().counter("runtime.channel_cache",
                                       result=result).inc()

    def _insert(self, key, entry):
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def _materialize(self, entry):
        # Import here: scenario imports this module (lazily) for the
        # global cache, so the top level must not import scenario.
        from ..core.scenario import ScenarioChannels

        return ScenarioChannels(
            h_ne=AcousticChannel(np.array(entry.h_ne, copy=True),
                                 name="h_ne"),
            h_nr=tuple(
                AcousticChannel(np.array(ir, copy=True), name=f"h_nr[{i}]")
                for i, ir in enumerate(entry.h_nr)
            ),
            h_se=AcousticChannel(np.array(entry.h_se, copy=True),
                                 name="h_se"),
            acoustic_lead_samples=tuple(entry.lead),
            sample_rate=entry.sample_rate,
        )

    def _disk_path(self, key):
        return self.disk_dir / f"{key}.npz"

    def _disk_store(self, key, entry):
        """Atomic write: full temp file + rename, or nothing."""
        if self.disk_dir is None:
            return
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "version": np.array([DISK_FORMAT_VERSION], dtype=np.int64),
                "sample_rate": np.array([entry.sample_rate]),
                "lead": np.array(entry.lead, dtype=np.int64),
                "n_relays": np.array([len(entry.h_nr)], dtype=np.int64),
                "h_ne": entry.h_ne,
                "h_se": entry.h_se,
            }
            for i, ir in enumerate(entry.h_nr):
                payload[f"h_nr_{i}"] = ir
            fd, tmp = tempfile.mkstemp(dir=self.disk_dir,
                                       suffix=".npz.tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **payload)
                os.replace(tmp, self._disk_path(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except OSError:
            # A read-only or full disk degrades to memory-only caching.
            pass

    def _disk_load(self, key):
        """Load one entry, or ``None`` (and drop the file) if unusable."""
        if self.disk_dir is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                version = int(data["version"][0])
                if version != DISK_FORMAT_VERSION:
                    raise ValueError(f"disk format v{version}")
                n_relays = int(data["n_relays"][0])
                entry = _Entry(
                    h_ne=np.array(data["h_ne"]),
                    h_nr=tuple(np.array(data[f"h_nr_{i}"])
                               for i in range(n_relays)),
                    h_se=np.array(data["h_se"]),
                    lead=tuple(int(v) for v in data["lead"]),
                    sample_rate=float(data["sample_rate"][0]),
                )
            if len(entry.lead) != n_relays:
                raise ValueError("lead/relay count mismatch")
            for ir in (entry.h_ne, entry.h_se) + entry.h_nr:
                if ir.ndim != 1 or not np.all(np.isfinite(ir)):
                    raise ValueError("invalid impulse response")
            return entry
        except Exception:
            # Corrupt, truncated, or stale-format entry: move it aside
            # so the slot is rebuilt from scratch (and rewritten
            # cleanly) while the bad bytes stay available for
            # inspection under .quarantine/.
            self.disk_discards += 1
            self._count("disk_discard")
            self._quarantine(path)
            return None

    def _quarantine(self, path):
        """Move a corrupt entry into ``.quarantine/`` (unlink fallback)."""
        if obs.enabled():
            obs.get_registry().counter("cache.corruption_total").inc()
        try:
            qdir = self.disk_dir / ".quarantine"
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
            self.quarantined += 1
        except OSError:
            # Can't move it (read-only dir, cross-device ...): fall back
            # to deleting so the poisoned entry never hits again.
            try:
                path.unlink()
            except OSError:
                pass


_default_cache = None
_default_lock = threading.Lock()


def get_channel_cache():
    """The process-global cache :meth:`Scenario.build_channels` uses.

    Created on first use; the disk store is attached when
    ``$REPRO_DISK_CACHE`` is a truthy value (``1``/``true``/``yes``),
    honoring ``$REPRO_CACHE_DIR`` for its location.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            disk = os.environ.get(DISK_CACHE_ENV, "").strip().lower()
            disk_dir = (default_disk_dir()
                        if disk in ("1", "true", "yes", "on") else None)
            _default_cache = ChannelCache(disk_dir=disk_dir)
        return _default_cache


def set_channel_cache(cache):
    """Replace the process-global cache; returns the previous one.

    Pass a :class:`ChannelCache` (e.g. one with a disk store), or
    ``None`` to reset to a fresh default on next use.
    """
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
        return previous
