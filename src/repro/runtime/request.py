"""RunRequest — the one context object a run is asked *with*.

Before this module existed, run context leaked through three side
channels: ad-hoc ``**overrides`` kwargs on :meth:`Experiment.run`, a
``params`` dict threaded through :func:`run_experiments`, and the
``REPRO_KERNEL_BACKEND`` environment variable mutated by the CLI so
worker processes would inherit it.  A :class:`RunRequest` replaces all
three: it names the seed, the duration, the kernel backend, the fault
plan, the observability switch, and the worker count in one frozen,
picklable value that travels *with* the job — into
:meth:`repro.eval.experiments.registry.Experiment.run`,
:func:`repro.runtime.run_experiments` workers, and
:meth:`repro.serving.SessionManager.submit` alike.

Determinism contract: two identical requests produce bit-identical
results regardless of ``jobs`` — the request is applied inside the
worker (see :func:`RunRequest.kernel_backend_scope`), not smuggled via
process-global state, so serial and parallel execution see the same
context.  ``tests/test_runtime.py`` locks this in end-to-end.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os

from ..errors import ConfigurationError

__all__ = ["RunRequest"]


def _frozen_params(params):
    """Params as a sorted, hashable tuple of pairs (dataclass-friendly)."""
    if params is None:
        return ()
    if isinstance(params, tuple):
        params = dict(params)
    return tuple(sorted(params.items()))


@dataclasses.dataclass(frozen=True)
class RunRequest:
    """Everything a caller wants to say about *how* to run something.

    All fields are optional; an empty request means "the defaults".
    The object is frozen and picklable, so it can ride into process-pool
    workers unchanged.

    Attributes
    ----------
    seed:
        Random seed forwarded to runners that accept one.
    duration_s:
        Simulated seconds forwarded to runners that accept it.
    kernel_backend:
        Adaptive-kernel backend name (``"loop"`` / ``"vector"``);
        applied around the run via :meth:`kernel_backend_scope`, so it
        reaches every engine without per-engine plumbing.
    fault_plan:
        A :class:`repro.faults.FaultPlan` forwarded to runners (and
        serving sessions) that accept one.
    with_obs:
        Record :mod:`repro.obs` traces/metrics around the run.
    jobs:
        Worker-process count for suite-level calls
        (:func:`run_experiments`); ignored by single runs.
    params:
        Extra runner parameters, stored as a sorted tuple of
        ``(name, value)`` pairs (pass a dict; it is frozen on init).
    """

    seed: int | None = None
    duration_s: float | None = None
    kernel_backend: str | None = None
    fault_plan: object | None = None
    with_obs: bool = True
    jobs: int = 1
    params: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "params", _frozen_params(self.params))
        if self.jobs < 1:
            raise ConfigurationError(
                f"RunRequest.jobs must be >= 1, got {self.jobs}"
            )
        if self.kernel_backend is not None:
            # Validate eagerly — a typo should fail at request build
            # time, not inside a worker process.
            from ..core.adaptive import kernels

            kernels.resolve_backend_name(self.kernel_backend)

    def replace(self, **changes):
        """A copy with some fields changed (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    def experiment_params(self):
        """The runner-parameter dict this request contributes.

        ``seed`` / ``duration_s`` / ``fault_plan`` are included only
        when set, then :attr:`params` entries are laid on top — so a
        generic request composes with per-run parameter points the way
        ``run_experiments`` merges its own layers.
        """
        merged = {}
        if self.seed is not None:
            merged["seed"] = self.seed
        if self.duration_s is not None:
            merged["duration_s"] = self.duration_s
        if self.fault_plan is not None:
            merged["fault_plan"] = self.fault_plan
        merged.update(dict(self.params))
        return merged

    @contextlib.contextmanager
    def kernel_backend_scope(self):
        """Apply :attr:`kernel_backend` for the duration of a run.

        Implemented over the ``REPRO_KERNEL_BACKEND`` environment
        variable because that is the one injection point every engine
        already consults — but scoped and restored, unlike the CLI's
        old permanent ``os.environ`` write.  A ``None`` backend is a
        no-op scope.
        """
        from ..core.adaptive import kernels

        if self.kernel_backend is None:
            yield
            return
        previous = os.environ.get(kernels.ENV_VAR)
        os.environ[kernels.ENV_VAR] = self.kernel_backend
        try:
            yield
        finally:
            if previous is None:
                os.environ.pop(kernels.ENV_VAR, None)
            else:
                os.environ[kernels.ENV_VAR] = previous

    def to_dict(self):
        """JSON-able summary (the fault plan appears as its plan key)."""
        plan = self.fault_plan
        return {
            "seed": self.seed,
            "duration_s": self.duration_s,
            "kernel_backend": self.kernel_backend,
            "fault_plan": (None if plan is None
                           else getattr(plan, "plan_key", lambda: repr(plan))()),
            "with_obs": self.with_obs,
            "jobs": self.jobs,
            "params": {k: v for k, v in self.params},
        }
