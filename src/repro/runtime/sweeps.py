"""Parameter sweeps over registered experiments.

:func:`sweep` expands a parameter grid into independent experiment runs
and executes them through the parallel executor; because every runner
returns the normalized ``{name, params, results}`` envelope, the sweep
output is a mergeable list of self-describing records.

Two canned sweeps re-express the paper's grid-shaped figures as
parallel grids (Corey's delay-performance sweeps and Friot's
non-causality study both take exactly this shape):

* :func:`lookahead_sweep` — Figure 16, one run per extra-lookahead
  setting instead of one serial loop;
* :func:`relay_map_sweep` — Figure 19, one run per noise-source
  position.
"""

from __future__ import annotations

import dataclasses
import itertools

from ..errors import ConfigurationError
from .executor import run_experiments
from .request import RunRequest

__all__ = [
    "SweepResult",
    "combined_curves",
    "lookahead_sweep",
    "merged_decisions",
    "relay_map_sweep",
    "sweep",
]


@dataclasses.dataclass
class SweepResult:
    """All runs of one grid sweep, in grid order."""

    experiment: str
    grid: dict            # param -> list of swept values (as given)
    runs: list            # ExperimentResult envelopes, grid order
    suite: object         # the underlying SuiteReport

    def collect(self, fn):
        """``fn(results_object)`` over every run, in grid order."""
        return [fn(run["results"]) for run in self.runs]

    def merged(self):
        """The sweep as one list of ``{name, params, results}`` dicts.

        Every record already carries the params that produced it, so
        concatenating sweeps (or suites) is just list concatenation.
        """
        return list(self.runs)

    def report(self):
        """Per-point one-liners plus the executor's merged summary."""
        lines = [f"== sweep: {self.experiment} over "
                 f"{', '.join(self.grid)} ({len(self.runs)} point(s)) =="]
        for run in self.runs:
            swept = {k: run["params"].get(k) for k in self.grid}
            lines.append(f"  {swept}")
        return "\n".join(lines) + "\n\n" + self.suite.report()


def sweep(experiment, grid, jobs=1, base_params=None, with_obs=True,
          request=None):
    """Run ``experiment`` at every point of a parameter grid.

    Parameters
    ----------
    experiment:
        Registry name (or an :class:`Experiment`) to run.
    grid:
        ``param -> iterable of values``; the sweep covers the cartesian
        product in ``itertools.product`` order.
    jobs:
        Worker processes for the underlying executor.
    base_params:
        Params common to every point (seed, duration, scenario...).
    request:
        Optional :class:`~repro.runtime.request.RunRequest` carrying
        the full run context; ``jobs``/``base_params``/``with_obs``
        are folded into it when it is omitted.

    Returns a :class:`SweepResult` whose ``runs`` align with the grid
    expansion order.
    """
    name = getattr(experiment, "name", experiment)
    if not grid:
        raise ConfigurationError("sweep needs a non-empty grid")
    keys = list(grid)
    values = [list(grid[k]) for k in keys]
    if any(not v for v in values):
        raise ConfigurationError("every grid axis needs at least one value")
    points = [dict(zip(keys, combo))
              for combo in itertools.product(*values)]

    # One job per grid point; per-point params ride on the job list, so
    # duplicate names are fine.
    if request is None:
        request = RunRequest(jobs=jobs, with_obs=with_obs,
                             params=base_params or {})
    suite = run_experiments(
        [(name, point) for point in points],
        request=request,
    )

    failures = suite.failures()
    if failures:
        first = next(iter(failures.values()))
        raise ConfigurationError(
            f"sweep of {name!r} failed at {len(failures)} point(s); "
            f"first failure:\n{first}"
        )
    return SweepResult(
        experiment=name,
        grid={k: list(v) for k, v in zip(keys, values)},
        runs=[o.result for o in suite.outcomes],
        suite=suite,
    )


def lookahead_sweep(extras_s=None, jobs=1, duration_s=None, seed=None,
                    scenario=None):
    """Figure 16 as a parallel grid: one run per extra-lookahead setting.

    Each grid point runs :func:`run_fig16` with a single-element
    ``extras_s``, so the points are independent and the executor can
    fan them out; ``combined_curves`` of the result reassembles the
    figure's full curve set.
    """
    from ..eval.experiments.fig16_lookahead import PAPER_EXTRA_LOOKAHEADS_S

    extras = tuple(PAPER_EXTRA_LOOKAHEADS_S if extras_s is None else extras_s)
    base = {k: v for k, v in (("duration_s", duration_s), ("seed", seed),
                              ("scenario", scenario)) if v is not None}
    return sweep("fig16", {"extras_s": [(e,) for e in extras]},
                 jobs=jobs, base_params=base)


def combined_curves(sweep_result):
    """Label → curve across all runs of a fig16 :func:`lookahead_sweep`."""
    curves = {}
    for run in sweep_result.runs:
        curves.update(run["results"].curves)
    return curves


def relay_map_sweep(positions=None, jobs=1, duration_s=None, seed=None,
                    scenario=None):
    """Figure 19 as a parallel grid: one run per noise-source position.

    Each grid point runs :func:`run_fig19` with a single source
    position; ``merged_decisions`` reassembles the full association
    map.
    """
    from ..eval.experiments.fig19_relay_map import default_source_positions

    table = dict(default_source_positions() if positions is None
                 else positions)
    base = {k: v for k, v in (("duration_s", duration_s), ("seed", seed),
                              ("scenario", scenario)) if v is not None}
    grid = {"positions": [{label: point} for label, point in table.items()]}
    return sweep("fig19", grid, jobs=jobs, base_params=base)


def merged_decisions(sweep_result):
    """Position label → (selected, expected) across a fig19 sweep."""
    decisions = {}
    for run in sweep_result.runs:
        results = run["results"]
        for label in results.decisions:
            decisions[label] = (results.decisions[label],
                                results.expected[label])
    return decisions
