"""Merging per-worker observability documents into one report.

The parallel executor runs each experiment in its own process, so each
worker records its own ``repro.obs.trace/v1`` and
``repro.obs.metrics/v1`` documents.  These helpers fold the per-worker
payloads into single documents the ``repro run-all`` CLI (and the
runtime suite report) can print:

* :func:`merge_metrics_documents` — counters sum, gauges keep the last
  write (with summed write counts), histograms merge bucket-by-bucket
  when the bucket layouts agree;
* :func:`merge_trace_documents` — each worker's span forest is hung
  under a synthetic ``experiment:<name>`` root so one tree shows the
  whole suite;
* :func:`render_metrics_document` — terminal table for a (merged)
  metrics document, mirroring ``MetricsRegistry.render``.
"""

from __future__ import annotations

import copy

from ..obs.metrics import METRICS_SCHEMA
from ..obs.trace import TRACE_SCHEMA

__all__ = [
    "merge_metrics_documents",
    "merge_trace_documents",
    "render_metrics_document",
]


def _merge_histogram(into, new):
    into["count"] += new["count"]
    into["sum"] += new["sum"]
    for bound in ("min", "max"):
        values = [v for v in (into[bound], new[bound]) if v is not None]
        if values:
            into[bound] = (min(values) if bound == "min" else max(values))
    into["mean"] = into["sum"] / into["count"] if into["count"] else None
    # Quantiles cannot be re-estimated without the buckets; merge those
    # when the layouts agree and recompute nothing else.
    mine = into.get("buckets") or []
    theirs = new.get("buckets") or []
    if ([b["le"] for b in mine] == [b["le"] for b in theirs]):
        for slot, other in zip(mine, theirs):
            slot["count"] += other["count"]
        into["overflow"] = into.get("overflow", 0) + new.get("overflow", 0)
    for quantile in ("p50", "p90", "p99"):
        into.pop(quantile, None)


def merge_metrics_documents(documents):
    """Fold several ``repro.obs.metrics/v1`` documents into one.

    Counters sum; gauges keep the value from the *latest* document that
    wrote one (write counts sum); histograms merge counts/sums/buckets.
    Input documents are not modified.
    """
    merged = {}
    order = []
    for document in documents:
        if not document:
            continue
        for metric in document.get("metrics", ()):
            key = (metric["kind"], metric["name"],
                   tuple(sorted(metric.get("labels", {}).items())))
            if key not in merged:
                merged[key] = copy.deepcopy(metric)
                order.append(key)
                continue
            into = merged[key]
            if metric["kind"] == "counter":
                into["value"] += metric["value"]
            elif metric["kind"] == "gauge":
                if metric.get("writes"):
                    into["value"] = metric["value"]
                into["writes"] = (into.get("writes", 0)
                                  + metric.get("writes", 0))
            else:
                _merge_histogram(into, metric)
    return {
        "schema": METRICS_SCHEMA,
        "metrics": [merged[key] for key in
                    sorted(order, key=lambda k: (k[1], k[2]))],
    }


def merge_trace_documents(named_documents):
    """One ``repro.obs.trace/v1`` forest from per-experiment documents.

    ``named_documents`` is an iterable of ``(experiment_name, document)``
    pairs; each document's root spans become children of a synthetic
    ``experiment:<name>`` span whose wall time sums its children.
    """
    roots = []
    for name, document in named_documents:
        spans = (document or {}).get("spans", [])
        roots.append({
            "name": f"experiment:{name}",
            "t_start_s": 0.0,
            "wall_s": sum(s.get("wall_s") or 0.0 for s in spans),
            "cpu_s": sum(s.get("cpu_s") or 0.0 for s in spans),
            "attributes": {"merged": True},
            "children": spans,
        })
    return {"schema": TRACE_SCHEMA, "spans": roots}


def render_metrics_document(document):
    """Terminal table for a metrics document (merged or single-worker)."""
    rows = []
    for metric in document.get("metrics", ()):
        labels = ",".join(f"{k}={v}" for k, v in
                          sorted(metric.get("labels", {}).items()))
        kind = metric["kind"]
        if kind == "histogram":
            if metric["count"]:
                mean = metric["mean"]
                detail = (f"n={metric['count']} mean={mean:.3e} "
                          f"min={metric['min']:.3e} max={metric['max']:.3e}")
            else:
                detail = "n=0"
        elif kind == "gauge":
            if metric.get("writes"):
                detail = f"{metric['value']:.6g} (writes={metric['writes']})"
            else:
                detail = "unset"
        else:
            detail = f"{metric['value']:g}"
        rows.append(f"{metric['name']:<28} {kind:<9} {labels:<24} {detail}")
    if not rows:
        return "(no metrics recorded)"
    return "\n".join(rows)
