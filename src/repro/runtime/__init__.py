"""repro.runtime — cached + parallel simulation runtime.

The layer between the acoustic simulator and the experiment suite that
makes heavy multi-scenario traffic cheap:

* :mod:`~repro.runtime.cache` — content-addressed channel cache.
  :meth:`Scenario.build_channels` routes through it transparently, so
  every :class:`MuteSystem`, experiment, and benchmark re-uses
  image-source output for identical geometry (in-process LRU, plus an
  opt-in on-disk store under ``~/.cache/repro``).
* :mod:`~repro.runtime.executor` — fans independent experiment runs
  out over a process pool (serial fallback included) and merges each
  worker's :mod:`repro.obs` spans/metrics into one report; backs the
  ``repro run-all --jobs N`` CLI.  Worker deaths and stuck jobs are
  governed by a :class:`JobRetryPolicy` (bounded retry with jittered
  backoff, per-job deadlines, partial :class:`SuiteReport` on abort —
  see ``docs/RESILIENCE.md``).
* :mod:`~repro.runtime.sweeps` — :func:`sweep` expands parameter grids
  into parallel runs; :func:`lookahead_sweep` / :func:`relay_map_sweep`
  re-express Figures 16 and 19 as grids.
* :mod:`~repro.runtime.request` — :class:`RunRequest`, the one frozen
  context object (seed, duration, kernel backend, fault plan, obs
  switch, worker count) accepted by ``Experiment.run``,
  :func:`run_experiments`, and ``repro.serving``.

Quick tour::

    from repro import runtime

    channels = scenario.build_channels()        # cached transparently
    request = runtime.RunRequest(jobs=2, seed=1)
    suite = runtime.run_experiments(["fig13", "timing"], request=request)
    print(suite.report())                       # merged obs included

    result = runtime.sweep("fig16",
                           {"extras_s": [(0.0,), (0.38e-3,)]}, jobs=2)

Full guide: ``docs/RUNTIME.md``.
"""

from __future__ import annotations

from .cache import (
    CHANNEL_KEY_VERSION,
    ChannelCache,
    default_disk_dir,
    get_channel_cache,
    scenario_cache_key,
    set_channel_cache,
)
from .executor import (
    SUITE_SCHEMA,
    JobOutcome,
    JobRetryPolicy,
    SuiteReport,
    run_experiments,
)
from .merge import (
    merge_metrics_documents,
    merge_trace_documents,
    render_metrics_document,
)
from .request import RunRequest
from .sweeps import (
    SweepResult,
    combined_curves,
    lookahead_sweep,
    merged_decisions,
    relay_map_sweep,
    sweep,
)

__all__ = [
    # cache
    "CHANNEL_KEY_VERSION",
    "ChannelCache",
    "default_disk_dir",
    "get_channel_cache",
    "scenario_cache_key",
    "set_channel_cache",
    # executor
    "SUITE_SCHEMA",
    "JobOutcome",
    "JobRetryPolicy",
    "SuiteReport",
    "run_experiments",
    # request
    "RunRequest",
    # merge
    "merge_metrics_documents",
    "merge_trace_documents",
    "render_metrics_document",
    # sweeps
    "SweepResult",
    "combined_curves",
    "lookahead_sweep",
    "merged_decisions",
    "relay_map_sweep",
    "sweep",
]
