"""Stage-level profiling of the MUTE pipeline (``repro perf-profile``).

The harness runs the Figure 12 bench workload end to end through
:meth:`repro.core.system.MuteSystem.run` and, separately, through each
stage in isolation:

``synthesis``
    Source-noise generation (:class:`repro.signals.WhiteNoise`).
``channel``
    Room acoustics — ``h_ne`` and ``h_nr`` FIR application
    (:mod:`repro.acoustics.channels`, the fast-conv engine's territory).
``relay``
    The IoT relay forward path.  With the default
    :class:`~repro.wireless.relay.AnalogRelay` this is the full
    FM-at-complex-baseband chain — resample up, modulate, CFO, AWGN,
    discriminate, resample down — the polyphase-cache fast path's
    territory.
``kernel``
    The adaptive LANC walk over the prepared signals (the backend
    selected per the usual ``REPRO_KERNEL_BACKEND`` order).
``ear``
    Ear-side hardware: transducer coloration and ear-canal coupling
    (:mod:`repro.hardware`).

Each stage is timed with the shared median-of-N
:func:`repro.perf.time_call` timer and reported as a ``repro.perf/v1``
JSON document — the artifact the CI perf-smoke job uploads and the
document every fast path in ``docs/PERFORMANCE.md`` cites as its
motivation.

Stage timings are *diagnostic* (where does the time go?); the committed
regression gate lives in ``benchmarks/bench_pipeline.py``, which runs
the same workload fast-vs-slow and asserts the speedup floor.
"""

from __future__ import annotations

import numpy as np

from ..core.system import MuteSystem
from ..errors import ConfigurationError
from ..eval.experiments.common import bench_scenario, default_config
from ..hardware.ear import EarCanalCoupling
from ..signals import WhiteNoise
from ..utils import fastpath
from ..wireless.relay import AnalogRelay
from .timer import time_call

__all__ = ["PROFILE_SCHEMA", "default_noise", "profile_pipeline"]

#: Schema identifier stamped on every profile document.
PROFILE_SCHEMA = "repro.perf/v1"

#: Stage names in pipeline order (the report preserves this order).
STAGES = ("synthesis", "channel", "relay", "kernel", "ear")


def default_noise(duration_s, sample_rate=8000.0, seed=7):
    """The Figure 12 workload: seeded white noise at bench level."""
    return WhiteNoise(sample_rate=sample_rate, level_rms=0.1,
                      seed=seed).generate(duration_s)


def profile_pipeline(duration_s=2.0, repeats=3, warmup=1, seed=7,
                     kernel_backend=None, use_fastpath=None):
    """Profile the pipeline; returns a ``repro.perf/v1`` dict.

    Parameters
    ----------
    duration_s:
        Simulated workload length (seconds of audio).
    repeats / warmup:
        Per-stage timing repeats (median reported) and untimed warmup
        calls — warmup 1 measures the steady state the caches serve.
    seed:
        Workload seed (Figure 12 uses 7).
    kernel_backend:
        Adaptive-kernel backend override (``"loop"``/``"vector"``);
        ``None`` defers to ``REPRO_KERNEL_BACKEND`` then the default.
    use_fastpath:
        Force the :mod:`repro.utils.fastpath` toggle for the whole
        profile (``True``/``False``); ``None`` keeps the ambient
        setting.  Profiling both settings is how a fast path's stage
        win is demonstrated.
    """
    if duration_s <= 0:
        raise ConfigurationError(
            f"duration_s must be > 0, got {duration_s}")
    scenario = bench_scenario()
    sample_rate = scenario.sample_rate
    relay = AnalogRelay(audio_rate=sample_rate, seed=seed)
    config = default_config(relay=relay, seed=seed,
                            kernel_backend=kernel_backend)

    with fastpath.scope(use_fastpath):
        system = MuteSystem(scenario, config)
        noise = default_noise(duration_s, sample_rate, seed)
        prepared = system.prepare(noise)
        earcup_model = EarCanalCoupling(sample_rate=sample_rate)
        transducer = config.transducer
        h_ne = system.channels.h_ne
        h_nr = system.channels.h_nr[system.relay_index]
        source = WhiteNoise(sample_rate=sample_rate, level_rms=0.1,
                            seed=seed)
        captured = h_nr.apply(noise)
        antinoise = prepared.disturbance_at_ear  # stand-in drive signal

        def run_kernel():
            lanc = system.make_filter(n_future=prepared.n_future)
            return lanc.run(
                prepared.reference, prepared.disturbance_at_ear,
                secondary_path_true=prepared.secondary_path_true)

        def run_ear():
            colored = transducer.apply(antinoise)
            return earcup_model.drum_pressure(prepared.disturbance_at_ear,
                                              colored)

        stage_fns = {
            "synthesis": lambda: source.generate(duration_s),
            "channel": lambda: (h_ne.apply(noise), h_nr.apply(noise)),
            "relay": lambda: relay.forward(captured),
            "kernel": run_kernel,
            "ear": run_ear,
        }
        stages = []
        for name in STAGES:
            timing = time_call(stage_fns[name], repeats=repeats,
                               warmup=warmup)
            stages.append({"stage": name, **timing.to_dict()})

        end_to_end = time_call(lambda: system.run(noise), repeats=repeats,
                               warmup=warmup)
        residual_rms = float(np.sqrt(np.mean(
            np.square(end_to_end.result.residual))))

    total_stage_s = sum(s["median_s"] for s in stages)
    for s in stages:
        s["fraction_of_stages"] = (s["median_s"] / total_stage_s
                                   if total_stage_s > 0 else 0.0)
    return {
        "schema": PROFILE_SCHEMA,
        "workload": {
            "kind": "fig12-white-noise",
            "duration_s": float(duration_s),
            "sample_rate": float(sample_rate),
            "seed": int(seed),
            "samples": int(noise.size),
            "relay": "analog",
        },
        "settings": {
            "repeats": int(repeats),
            "warmup": int(warmup),
            "kernel_backend": kernel_backend,
            "fastpath": fastpath.enabled() if use_fastpath is None
            else bool(use_fastpath),
        },
        "stages": stages,
        "total_stage_s": total_stage_s,
        "end_to_end": {"target": "MuteSystem.run", **end_to_end.to_dict()},
        "residual_rms": residual_rms,
    }


def render_profile(doc):
    """Terminal table for one :func:`profile_pipeline` document."""
    lines = [
        f"== perf profile: {doc['workload']['duration_s']:.1f} s "
        f"fig12 workload, backend="
        f"{doc['settings']['kernel_backend'] or 'default'}, "
        f"fastpath={'on' if doc['settings']['fastpath'] else 'off'} ==",
        f"  {'stage':<10} {'median':>10} {'best':>10} {'share':>7}",
    ]
    for s in doc["stages"]:
        lines.append(
            f"  {s['stage']:<10} {s['median_s'] * 1e3:>8.2f}ms "
            f"{s['best_s'] * 1e3:>8.2f}ms "
            f"{s['fraction_of_stages'] * 100:>6.1f}%"
        )
    e2e = doc["end_to_end"]
    lines.append(
        f"  {'end-to-end':<10} {e2e['median_s'] * 1e3:>8.2f}ms "
        f"{e2e['best_s'] * 1e3:>8.2f}ms   (MuteSystem.run)"
    )
    return "\n".join(lines)
