"""Profile-guided performance tooling.

The perf package is the measurement side of the pipeline fast paths
(``docs/PERFORMANCE.md``):

* :mod:`repro.perf.timer` — the **one** median-of-N wall-clock timer
  shared by the stage profiler and every ``benchmarks/bench_*.py``
  suite, so all perf artifacts report comparable numbers;
* :mod:`repro.perf.harness` — the stage profiler behind
  ``repro perf-profile``: it times end-to-end :meth:`MuteSystem.run`
  and its synthesis / channel / relay / kernel / ear stages in
  isolation, and emits a ``repro.perf/v1`` JSON document.

The profile is what *justifies* each fast path: the cached-FFT
convolution engine (:mod:`repro.utils.fastconv`), the cached polyphase
resampler (:mod:`repro.wireless.fm`), the serving scratch arena
(:class:`repro.core.adaptive.kernels.BatchWorkspace`), and the BLAS RLS
update all target the stages this harness shows dominating the tick.
"""

from __future__ import annotations

from .harness import PROFILE_SCHEMA, default_noise, profile_pipeline
from .timer import Timing, time_call

__all__ = [
    "PROFILE_SCHEMA",
    "Timing",
    "default_noise",
    "profile_pipeline",
    "time_call",
]
