"""The shared wall-clock timer behind every perf artifact.

One implementation of "time a callable N times and summarize" serves
both the stage profiler (:mod:`repro.perf.harness`) and the
``benchmarks/bench_*.py`` suites, so a speedup in ``BENCH_kernels.json``
and a stage row in a ``repro.perf/v1`` report mean the same thing:
**median of N repeats** (robust to a single noisy run), with the best
repeat kept alongside for the optimist's view.
"""

from __future__ import annotations

import dataclasses
import statistics
import time

from ..errors import ConfigurationError

__all__ = ["Timing", "time_call"]


@dataclasses.dataclass(frozen=True)
class Timing:
    """Wall times of one repeated measurement, plus the last result."""

    result: object            #: return value of the final repeat
    times_s: tuple            #: every repeat's wall time, in run order

    @property
    def median_s(self):
        """Median repeat — the headline number every artifact reports."""
        return float(statistics.median(self.times_s))

    @property
    def best_s(self):
        """Fastest repeat (the least-interference bound)."""
        return float(min(self.times_s))

    @property
    def repeats(self):
        return len(self.times_s)

    def to_dict(self):
        """JSON-able summary (no ``result`` — callers own their payloads)."""
        return {
            "median_s": self.median_s,
            "best_s": self.best_s,
            "repeats": self.repeats,
            "times_s": [float(t) for t in self.times_s],
        }


def time_call(fn, repeats=3, warmup=0):
    """Run ``fn()`` ``repeats`` times; return a :class:`Timing`.

    ``warmup`` extra untimed calls run first — use 1 for code with
    one-time caches (FFT plans, polyphase designs) when measuring the
    steady state, 0 when the cold cost is the point.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    for __ in range(int(warmup)):
        fn()
    times = []
    result = None
    for __ in range(int(repeats)):
        started = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - started)
    return Timing(result=result, times_s=tuple(times))
