"""repro — a full reproduction of "MUTE: Bringing IoT to Noise
Cancellation" (SIGCOMM 2018) as a simulation library.

MUTE places an IoT relay near a noise source; the relay forwards the
sound over RF, which outruns the acoustic wavefront and gives the
ear-device a multi-millisecond *lookahead*.  The Lookahead-Aware Noise
Cancellation (LANC) algorithm spends that lookahead on non-causal
adaptive-filter taps and predictive profile switching, cancelling
unpredictable wide-band sound across [0, 4] kHz without blocking the
ear.

Quick start::

    import repro

    scenario = repro.office_scenario()
    system = repro.MuteSystem(scenario, repro.MuteConfig(mu=0.1, n_past=384))
    noise = repro.WhiteNoise(level_rms=0.1, seed=1).generate(5.0)
    result = system.run(noise)
    print(result.mean_cancellation_db(), "dB")

Package map
-----------
``repro.core``
    LANC and FxLMS adaptive filters, profile switching, GCC-PHAT relay
    selection, the end-to-end :class:`MuteSystem`, Bose-style baselines.
``repro.acoustics``
    Rooms, image-source impulse responses, propagation, channel
    inversion theory.
``repro.wireless``
    Analog FM relay at complex baseband, RF impairments, link budgets.
``repro.hardware``
    Converters, DSP latency budgets, transducer responses, passive
    earcups.
``repro.signals``
    Reproducible noise/speech/music/construction sources.
``repro.eval``
    Metrics, the listener-rating model, and one experiment runner per
    paper figure.
``repro.runtime``
    Content-addressed result cache, the parallel experiment executor,
    and the :class:`~repro.runtime.RunRequest` run-configuration API
    (``docs/RUNTIME.md``).
``repro.serving``
    Multi-session serving runtime: batched cross-session kernels,
    admission control, backpressure (``docs/SERVING.md``).
``repro.obs``
    Off-by-default observability: span tracing, metrics, and the
    timing-budget profiler (``docs/OBSERVABILITY.md``).
``repro.faults``
    Fault injection (outages, fades, packet loss) and the graceful-
    degradation controller (``docs/FAULTS.md``).
``repro.tools``
    Repo maintenance utilities, e.g. the documentation lint
    (``python -m repro.tools.check_docs``).
"""

from .core import (
    BoseHeadphone,
    ConventionalAncModel,
    FilterCache,
    FxlmsFilter,
    LancFilter,
    LmsFilter,
    LookaheadBudget,
    MuteConfig,
    MuteRunResult,
    MuteSystem,
    PredictiveProfileSwitcher,
    ProfileClassifier,
    RelaySelector,
    ResilientRunResult,
    Scenario,
    StreamingLanc,
    estimate_secondary_path,
    gcc_phat,
    identify_system,
    lookahead_samples,
    lookahead_seconds,
    measure_lookahead,
    office_scenario,
)
from .acoustics import (
    AcousticChannel,
    Point,
    Room,
    room_impulse_response,
)
from .errors import (
    ChannelError,
    ConfigurationError,
    ConvergenceError,
    LookaheadError,
    RelaySelectionError,
    ReproError,
    SignalError,
)
from .hardware import (
    DspBoard,
    PassiveEarcup,
    TransducerResponse,
    bose_qc35_earcup,
    cheap_transducer,
    tms320c6713,
)
from .signals import (
    BandlimitedNoise,
    ConstructionNoise,
    FemaleVoice,
    IntermittentSource,
    MachineHum,
    MaleVoice,
    PinkNoise,
    SyntheticMusic,
    SyntheticSpeech,
    Tone,
    WhiteNoise,
)
from .wireless import AnalogRelay, IdealRelay, RfChannelConfig

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BoseHeadphone",
    "ConventionalAncModel",
    "FilterCache",
    "FxlmsFilter",
    "LancFilter",
    "LmsFilter",
    "LookaheadBudget",
    "MuteConfig",
    "MuteRunResult",
    "MuteSystem",
    "PredictiveProfileSwitcher",
    "ProfileClassifier",
    "RelaySelector",
    "ResilientRunResult",
    "Scenario",
    "StreamingLanc",
    "estimate_secondary_path",
    "gcc_phat",
    "identify_system",
    "lookahead_samples",
    "lookahead_seconds",
    "measure_lookahead",
    "office_scenario",
    # acoustics
    "AcousticChannel",
    "Point",
    "Room",
    "room_impulse_response",
    # errors
    "ChannelError",
    "ConfigurationError",
    "ConvergenceError",
    "LookaheadError",
    "RelaySelectionError",
    "ReproError",
    "SignalError",
    # hardware
    "DspBoard",
    "PassiveEarcup",
    "TransducerResponse",
    "bose_qc35_earcup",
    "cheap_transducer",
    "tms320c6713",
    # signals
    "BandlimitedNoise",
    "ConstructionNoise",
    "FemaleVoice",
    "IntermittentSource",
    "MachineHum",
    "MaleVoice",
    "PinkNoise",
    "SyntheticMusic",
    "SyntheticSpeech",
    "Tone",
    "WhiteNoise",
    # wireless
    "AnalogRelay",
    "IdealRelay",
    "RfChannelConfig",
]
