"""MUTE across the paper's everyday scenes — and remembering what it learned.

Part 1 runs the §1 motivating environments (airport gate, gym, bedroom)
through the full system and reports each one's lookahead and
cancellation.

Part 2 shows persistence: the device learns sound profiles and converged
filters in the bedroom, saves them to JSON, and — "the next evening" —
reloads them so the canceler starts from converged taps instead of
zeros.

Run:  python examples/everyday_scenes.py
"""

from __future__ import annotations

import tempfile

import numpy as np

import repro
from repro.core import (
    FilterCache,
    all_presets,
    bedroom_at_night,
    load_learned_state,
    save_learned_state,
)


def tour_of_presets():
    print("== Part 1: the paper's everyday scenes ==")
    print(f"{'scene':18s} {'lead (ms)':>9s} {'cancellation (dB)':>18s}")
    print("-" * 50)
    for name, (scenario, source) in all_presets(seed=11).items():
        system = repro.MuteSystem(scenario, repro.MuteConfig(
            mu=0.25, n_past=384, n_future=64, probe_noise_rms=0.002))
        run = system.run(source.generate(6.0))
        lead_ms = system.lookahead_budget.acoustic_lead_s * 1e3
        mean_db = run.mean_cancellation_db(settle_fraction=0.5)
        print(f"{name:18s} {lead_ms:9.2f} {mean_db:18.1f}")
    print()


def persistence_demo():
    print("== Part 2: remembering converged filters across sessions ==")
    scenario, source = bedroom_at_night(seed=11)
    system = repro.MuteSystem(scenario, repro.MuteConfig(
        mu=0.2, n_past=256, n_future=48, probe_noise_rms=0.002))
    night_one = source.generate(5.0)

    # Night one: converge from scratch, then save the taps.
    prepared = system.prepare(night_one)
    lanc = system.make_filter(n_future=prepared.n_future)
    lanc.run(prepared.reference, prepared.disturbance_at_ear,
             secondary_path_true=prepared.secondary_path_true)
    cache = FilterCache()
    cache.store("bedroom", lanc.get_taps())
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        path = save_learned_state(f.name, cache=cache,
                                  metadata={"scene": "bedroom"})
    print(f"saved learned taps to {path}")

    # Night two: same room, fresh process; compare cold vs warm start.
    night_two = source.generate(3.0)
    prepared2 = system.prepare(night_two)
    first_second = slice(0, int(scenario.sample_rate))

    def early_residual(warm):
        f2 = system.make_filter(n_future=prepared2.n_future)
        if warm:
            __, loaded, ___ = load_learned_state(path)
            f2.set_taps(loaded.load("bedroom"))
        result = f2.run(prepared2.reference, prepared2.disturbance_at_ear,
                        secondary_path_true=prepared2.secondary_path_true)
        return float(np.sqrt(np.mean(result.error[first_second] ** 2)))

    cold = early_residual(warm=False)
    warm = early_residual(warm=True)
    print(f"first-second residual RMS: cold start {cold:.4f}, "
          f"warm start {warm:.4f} "
          f"({20 * np.log10(warm / cold):+.1f} dB)")
    print("the warm-started device is already cancelling when the "
          "lights go out.")


def main():
    tour_of_presets()
    persistence_demo()


if __name__ == "__main__":
    main()
