"""Architectural variants (paper §4.3): where can the pieces live?

The paper sketches three disaggregations beyond the basic wall relay:

1. **Personal tabletop** — the relay (with the DSP) sits on the user's
   own table, ~1 m toward the noise;
2. **Edge service** — ceiling relays wired to a shared DSP server;
3. **Smart noise** — the noise source itself carries the relay
   (maximum possible lookahead).

Each variant is, acoustically, a different relay placement and latency
budget; this example quantifies the lookahead and cancellation each one
buys on the same scene and workload.

Run:  python examples/architecture_variants.py
"""

from __future__ import annotations

import dataclasses

import repro
from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings
from repro.hardware import fast_dsp, tms320c6713


def main():
    room = Room(6.0, 5.0, 3.0, absorption=0.4)
    source = Point(1.0, 1.0, 1.3)
    client = Point(4.5, 3.5, 1.2)

    variants = {
        # label: (relay position, dsp board, note)
        "wall relay (baseline)": (
            Point(1.3, 0.7, 1.4), tms320c6713(),
            "relay pasted near the noise, DSP at the ear"),
        "personal tabletop": (
            Point(3.3, 2.7, 1.0), tms320c6713(),
            "relay+DSP on the user's table, ~1.5 m toward the noise"),
        "edge service (ceiling)": (
            Point(2.0, 2.0, 2.8), fast_dsp(),
            "ceiling relay, beefier shared DSP server"),
        "smart noise": (
            Point(1.05, 1.05, 1.3), tms320c6713(),
            "the noise source broadcasts itself"),
    }

    noise = repro.WhiteNoise(level_rms=0.1, seed=4).generate(6.0)
    print(f"{'variant':24s} {'lead (ms)':>9s} {'usable (ms)':>11s} "
          f"{'N taps':>6s} {'cancel (dB)':>11s}")
    print("-" * 70)
    for label, (relay_pos, board, note) in variants.items():
        scenario = repro.Scenario(
            room=room, source=source, client=client, relays=(relay_pos,),
            rir_settings=RirSettings(max_order=2),
        )
        config = repro.MuteConfig(n_future=96, n_past=384, mu=0.15,
                                  dsp=board)
        system = repro.MuteSystem(scenario, config)
        budget = system.lookahead_budget
        run = system.run(noise)
        print(f"{label:24s} {budget.acoustic_lead_s * 1e3:9.2f} "
              f"{budget.usable_lookahead_s * 1e3:11.2f} "
              f"{run.n_future_used:6d} "
              f"{run.mean_cancellation_db(settle_fraction=0.5):11.1f}")
        print(f"{'':24s} ({note})")

    print("\nSmart noise maximizes lookahead (the relay IS the source); "
          "the tabletop\ntrades some lookahead for zero installation — "
          "the paper's §4.3 trade-offs.")


if __name__ == "__main__":
    main()
