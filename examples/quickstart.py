"""Quickstart: cancel white noise in Alice's office.

Builds the paper's motivating scenario (Figure 1) — an IoT relay pasted
near the office door forwards corridor noise over RF to the ear-device —
runs the full MUTE simulation, and prints what the ear hears.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main():
    # 1. The scene: room, noise source, relay on the door, Alice's ear.
    scenario = repro.office_scenario()
    print("Scene:", f"{scenario.room.length:.0f} m x "
          f"{scenario.room.width:.0f} m office;",
          f"noise travels {scenario.source_to_client_m():.1f} m to the ear,",
          f"{scenario.source_to_relay_m():.1f} m to the relay")

    # 2. The system: LANC on the paper's TMS320C6713-class DSP.
    config = repro.MuteConfig(n_future=64, n_past=384, mu=0.1)
    system = repro.MuteSystem(scenario, config)
    print(system.summary())

    # 3. Play 5 seconds of wide-band noise and cancel it.
    noise = repro.WhiteNoise(level_rms=0.1, seed=1).generate(5.0)
    result = system.run(noise)

    print(f"\nMean cancellation [0, 4 kHz]: "
          f"{result.mean_cancellation_db():.1f} dB")
    for f_low, f_high in ((0, 1000), (1000, 2000), (2000, 4000)):
        value = result.mean_cancellation_db(f_low, f_high)
        print(f"  {f_low:4d}-{f_high} Hz: {value:6.1f} dB")
    print("\n(The ear canal stays open: no earcup was applied.)")


if __name__ == "__main__":
    main()
