"""The Figure 1 story, quantified: where should Alice put the relay?

Compares the IoT relay pasted on the office door (near the corridor
noise) against the same relay lying on Alice's desk, for a corridor
conversation workload.  Shows the timing ledger (Eq. 3/4) and the
resulting cancellation of each placement, plus what happens when the
analog FM relay chain replaces the ideal link.

Run:  python examples/office_corridor.py
"""

from __future__ import annotations

import repro


def describe_budget(label, system):
    budget = system.lookahead_budget
    print(f"{label}:")
    print(f"  acoustic lead      {budget.acoustic_lead_s * 1e3:7.2f} ms")
    print(f"  pipeline latency   {budget.pipeline_latency_s * 1e3:7.2f} ms")
    print(f"  usable lookahead   {budget.usable_lookahead_s * 1e3:7.2f} ms"
          f"  -> {budget.usable_future_taps(8000.0)} future taps")
    print(f"  meets Eq. 3 deadline: {budget.meets_deadline}")


def main():
    corridor_speech = repro.MaleVoice(level_rms=0.12, seed=3,
                                      speech_fraction=1.0)
    noise = corridor_speech.generate(8.0)

    results = {}
    for label, on_door in (("relay on the door", True),
                           ("relay on the desk", False)):
        scenario = repro.office_scenario(relay_on_door=on_door)
        system = repro.MuteSystem(
            scenario, repro.MuteConfig(n_future=64, n_past=384, mu=0.3))
        describe_budget(label, system)
        try:
            run = system.run(noise)
        except repro.LookaheadError as exc:
            print(f"  -> cannot run LANC here: {exc}\n")
            continue
        results[label] = run.mean_cancellation_db(settle_fraction=0.5)
        print(f"  -> cancellation of corridor speech: "
              f"{results[label]:.1f} dB\n")

    # The same door placement, but through the real analog FM relay.
    scenario = repro.office_scenario(relay_on_door=True)
    fm_relay = repro.AnalogRelay(
        seed=5, channel_config=repro.RfChannelConfig(snr_db=35.0, seed=5))
    system = repro.MuteSystem(scenario, repro.MuteConfig(
        n_future=64, n_past=384, mu=0.3, relay=fm_relay))
    run = system.run(noise)
    print("relay on the door, analog 900 MHz FM chain:")
    print(f"  relay audio SNR: {fm_relay.audio_snr_db(noise):.1f} dB "
          "(coherent)")
    print(f"  -> cancellation: "
          f"{run.mean_cancellation_db(settle_fraction=0.5):.1f} dB")

    if len(results) == 2:
        door, desk = (results["relay on the door"],
                      results["relay on the desk"])
        print(f"\nPlacing the relay at the door buys "
              f"{desk - door:.1f} dB over the desk placement.")


if __name__ == "__main__":
    main()
