"""Two people disturbing Alice at once — the §6 future-work system.

Background machinery drones from one corner while a colleague talks from
another.  A relay is pasted near each.  The single-reference prototype
(what the paper built) stalls on the mixture; the multi-reference LANC
(one aligned branch per relay) restores deep cancellation — with each
branch still exploiting its own lookahead taps.

Run:  python examples/multi_source.py
"""

from __future__ import annotations

from repro.eval.experiments import run_multisource
from repro.eval.experiments.ext_multisource import two_source_layout


def main():
    scenario, sources = two_source_layout()
    print("Scene: client at "
          f"({scenario.client.x:.1f}, {scenario.client.y:.1f}); "
          "sources/relays at:")
    for i, (source, relay) in enumerate(zip(sources, scenario.relays)):
        print(f"  source {i + 1} ({source.x:.1f}, {source.y:.1f})  "
              f"relay {i + 1} ({relay.x:.1f}, {relay.y:.1f})")
    print()

    result = run_multisource(duration_s=8.0)
    print(result.report())

    print("\nWhy the single reference stalls: the second source reaches")
    print("the relay and the ear through different room channels, so no")
    print("single filter maps the mixture; one reference per source")
    print("restores identifiability (paper §6, 'one for each noise")
    print("channel').")


if __name__ == "__main__":
    main()
