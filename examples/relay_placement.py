"""Multi-relay selection: the client picks the right relay by itself.

Three relays around a room, the MUTE client at the center (the paper's
Figure 19 layout).  For several noise-source positions the client
GCC-PHAT-correlates each relay's forwarded audio against its own error
microphone, rejects negative-lookahead relays, and associates with the
one offering the largest lead.

Run:  python examples/relay_placement.py
"""

from __future__ import annotations

import repro
from repro.acoustics import Point, Room
from repro.acoustics.rir import RirSettings


def build_room():
    room = Room(6.0, 5.0, 3.0, absorption=0.5)
    return repro.Scenario(
        room=room,
        source=Point(1.0, 1.0, 1.3),     # replaced per position below
        client=Point(3.0, 2.5, 1.2),
        relays=(
            Point(0.6, 0.6, 1.4),
            Point(5.4, 0.8, 1.4),
            Point(3.0, 4.4, 1.4),
        ),
        rir_settings=RirSettings(max_order=2),
    )


def main():
    base = build_room()
    selector = repro.RelaySelector(sample_rate=base.sample_rate)
    noise = repro.WhiteNoise(level_rms=0.1, seed=2).generate(1.5)

    positions = {
        "corner near relay 1": Point(1.0, 0.9, 1.3),
        "corner near relay 2": Point(5.0, 1.1, 1.3),
        "wall near relay 3": Point(3.1, 4.0, 1.3),
        "right next to the client": Point(3.2, 2.3, 1.3),
    }

    print(f"{'noise source':26s} {'selected':10s} lookahead per relay (ms)")
    print("-" * 70)
    for label, source in positions.items():
        scenario = base.with_source(source)
        system = repro.MuteSystem(
            scenario, repro.MuteConfig(probe_secondary=False))
        forwarded, ear = system.forwarded_and_ear_signals(noise)
        best, measured = selector.select(forwarded, ear)
        lags = "  ".join(
            f"#{i + 1}:{m.lag_s * 1e3:+6.2f}" for i, m in sorted(
                measured.items())
        )
        chosen = "none" if best is None else f"relay {best + 1}"
        print(f"{label:26s} {chosen:10s} {lags}")

    print("\n'none' means every relay would hear the sound *after* the "
          "ear\n(negative lookahead) — LANC must not use forwarded audio "
          "there,\nexactly the paper's association rule.")


if __name__ == "__main__":
    main()
