"""Predictive profile switching on an intermittent conversation.

Background noise plays continuously from one speaker while a voice talks
in bursts from another.  Two ear-devices run over the identical scene:
one with a single adaptive filter (it re-converges at every speech
onset), one with the lookahead-driven profile switcher (it swaps cached
filters right at the transitions).  Prints the per-band gain and the
switch log — the paper's Figure 17/Figure 8(c) behavior.

Run:  python examples/profile_switching.py
"""

from __future__ import annotations

from repro.eval.experiments import run_fig17


def main():
    result = run_fig17(duration_s=16.0, seed=31)
    print(result.report())

    print("\nSwitch log (first 10 events):")
    for event in result.switch_events[:10]:
        status = "cache hit" if event.cache_hit else "cold start"
        print(f"  t={event.sample_index / 8000.0:6.2f}s  "
              f"{event.from_label:10s} -> {event.to_label:10s}  ({status})")
    if len(result.switch_events) > 10:
        print(f"  ... {len(result.switch_events) - 10} more")


if __name__ == "__main__":
    main()
